//! The public, ownership-based BDD API: [`BddManager`] and [`Func`].
//!
//! A [`BddManager`] is a cheaply clonable shared handle to one BDD engine
//! (node arena, unique table, caches, reordering state). A [`Func`] is an
//! owned handle to one Boolean function on that manager: it holds a slot
//! in the manager's *external-root table*, so as long as the `Func` is
//! alive its function is pinned through garbage collection and dynamic
//! variable reordering. `Clone` increments the slot's refcount, `Drop`
//! decrements it — both O(1) — and [`BddManager::gc`] /
//! [`BddManager::reduce_heap`] therefore need **no roots argument**: the
//! root table is the complete external live set by construction.
//!
//! Correctness under GC and reordering is guaranteed by ownership
//! rather than by a caller-maintained roots contract: every live
//! [`Func`] survives any collection or reordering with unchanged
//! meaning. The one sharp edge left is lazy traversal: the
//! [`Func::cubes`] / [`Func::minterms_over`] iterators must not span a
//! reordering (see their docs), and [`Func::eval`] holds a shared
//! borrow so a mutating re-entry panics instead of misbehaving.
//!
//! # Example
//!
//! ```
//! use covest_bdd::BddManager;
//!
//! let mgr = BddManager::new();
//! let x = mgr.new_var();
//! let y = mgr.new_var();
//! let f = mgr.var(x).implies(&mgr.var(y));
//! assert_eq!(f.sat_count_exact(&[x, y]), 3);
//! // Operator sugar works too, and nothing needs `&mut` threading:
//! let g = &mgr.var(x) & &mgr.var(y);
//! assert!(g.leq(&f.ite(&g, &mgr.constant(false))));
//! // Collection takes no roots — live handles pin themselves.
//! mgr.gc();
//! assert!(g.and(&f).eval(&|_| true));
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::manager::Inner;
use crate::node::{Ref, VarId};
use crate::quant::QuantSchedule;
use crate::reorder::{ReorderConfig, ReorderStats};
use crate::stats::BddStats;

/// Root-table sentinel for the constant-false handle (terminals are
/// never stored in the table; their slots are virtual).
const SLOT_FALSE: u32 = u32::MAX;
/// Root-table sentinel for the constant-true handle.
const SLOT_TRUE: u32 = u32::MAX - 1;

/// A shared handle to a BDD manager.
///
/// Cloning is O(1) and yields a handle to the *same* engine; all
/// [`Func`]s created through any clone interoperate. The manager owns
/// the node arena, the level-organized unique table, the operation
/// caches, the dynamic-reordering state and the external-root table.
#[derive(Clone, Default)]
pub struct BddManager {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for BddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("BddManager")
            .field("vars", &inner.num_vars())
            .field("live_nodes", &inner.live_nodes())
            .field("roots", &inner.ext_live())
            .finish()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        BddManager {
            inner: Rc::new(RefCell::new(Inner::new())),
        }
    }

    /// `true` if `other` is a handle to the same underlying engine.
    pub fn same_manager(&self, other: &BddManager) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    // ---- variables ----------------------------------------------------

    /// Creates a fresh variable, ordered after all existing variables.
    pub fn new_var(&self) -> VarId {
        self.inner.borrow_mut().new_var()
    }

    /// Creates `n` fresh variables, ordered after all existing variables.
    pub fn new_vars(&self, n: usize) -> Vec<VarId> {
        self.inner.borrow_mut().new_vars(n)
    }

    /// Creates a fresh named variable (the name shows up in DOT dumps).
    pub fn new_named_var(&self, name: impl Into<String>) -> VarId {
        self.inner.borrow_mut().new_named_var(name)
    }

    /// Assigns a debug name to a variable.
    pub fn set_var_name(&self, var: VarId, name: impl Into<String>) {
        self.inner.borrow_mut().set_var_name(var, name);
    }

    /// Returns the debug name of `var`, if one was assigned.
    pub fn var_name(&self, var: VarId) -> Option<String> {
        self.inner.borrow().var_name(var).map(str::to_owned)
    }

    /// Number of variables created on this manager.
    pub fn num_vars(&self) -> usize {
        self.inner.borrow().num_vars()
    }

    /// Total number of allocated (live or freed-but-unreused) node slots,
    /// including the two terminals. This is the "BDD nodes" statistic
    /// reported in the paper's Table 2.
    pub fn table_size(&self) -> usize {
        self.inner.borrow().table_size()
    }

    /// Number of live nodes (allocated slots minus the free list).
    pub fn live_nodes(&self) -> usize {
        self.inner.borrow().live_nodes()
    }

    /// Engine memory footprint in bytes: the packed 16-byte node arena
    /// plus every unique table and compute cache. An allocator-independent
    /// peak-RSS proxy for benchmark reports.
    pub fn arena_bytes(&self) -> usize {
        self.inner.borrow().arena_bytes()
    }

    /// One combined reading of the memory gauges — `(live_nodes,
    /// arena_bytes, peak_live_nodes)` — in a single borrow. The
    /// telemetry memory sampler calls this at every span boundary and
    /// event, so the three gauges must come from one consistent
    /// snapshot (and one cell borrow, not three).
    pub fn mem_gauges(&self) -> (usize, usize, u64) {
        let inner = self.inner.borrow();
        (
            inner.live_nodes(),
            inner.arena_bytes(),
            inner.stats().peak_live_nodes,
        )
    }

    /// Number of live external-root slots (distinct live [`Func`]
    /// handles; clones share a slot).
    pub fn live_roots(&self) -> usize {
        self.inner.borrow().ext_live()
    }

    /// The level (position in the variable order, `0` = topmost) of `var`.
    pub fn level_of(&self, var: VarId) -> u32 {
        self.inner.borrow().level_of(var)
    }

    /// The variable sitting at `level` in the current order.
    pub fn var_at_level(&self, level: u32) -> VarId {
        self.inner.borrow().var_at_level(level)
    }

    // ---- function constructors ----------------------------------------

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> Func {
        Func {
            mgr: self.inner.clone(),
            slot: if value { SLOT_TRUE } else { SLOT_FALSE },
        }
    }

    /// The function that is true exactly when `var` is true.
    pub fn var(&self, var: VarId) -> Func {
        let mut inner = self.inner.borrow_mut();
        let r = inner.var(var);
        Func::wrap(&self.inner, &mut inner, r)
    }

    /// The function that is true exactly when `var` is false.
    pub fn nvar(&self, var: VarId) -> Func {
        let mut inner = self.inner.borrow_mut();
        let r = inner.nvar(var);
        Func::wrap(&self.inner, &mut inner, r)
    }

    /// A literal: `var` if `positive`, `!var` otherwise.
    pub fn literal(&self, var: VarId, positive: bool) -> Func {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Checks a foreign handle belongs to this engine before its slot is
    /// used to index the root table (a wrong-manager slot would resolve
    /// to an unrelated function).
    #[inline]
    fn check_same_mgr(&self, f: &Func) {
        assert!(
            Rc::ptr_eq(&self.inner, &f.mgr),
            "Func belongs to a different BddManager"
        );
    }

    /// Conjunction of many operands (true for the empty sequence).
    pub fn and_many<'a, I: IntoIterator<Item = &'a Func>>(&self, fs: I) -> Func {
        let refs = self.raw_operands(fs);
        let mut inner = self.inner.borrow_mut();
        let r = inner.and_many(refs);
        Func::wrap(&self.inner, &mut inner, r)
    }

    /// Disjunction of many operands (false for the empty sequence).
    pub fn or_many<'a, I: IntoIterator<Item = &'a Func>>(&self, fs: I) -> Func {
        let refs = self.raw_operands(fs);
        let mut inner = self.inner.borrow_mut();
        let r = inner.or_many(refs);
        Func::wrap(&self.inner, &mut inner, r)
    }

    /// Runs a closure under a shared borrow of the engine. Crate-internal
    /// escape hatch for sibling modules (serialization, DOT export) that
    /// need read access to raw engine state.
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&Inner) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Resolves a slice of handles to raw refs, checking ownership.
    /// Crate-internal: raw refs are only valid until the next collection.
    pub(crate) fn raw_refs(&self, fs: &[&Func]) -> Vec<Ref> {
        self.raw_operands(fs.iter().copied())
    }

    /// Resolves a sequence of handles to raw refs, checking ownership.
    fn raw_operands<'a, I: IntoIterator<Item = &'a Func>>(&self, fs: I) -> Vec<Ref> {
        let inner = self.inner.borrow();
        fs.into_iter()
            .map(|f| {
                self.check_same_mgr(f);
                f.raw(&inner)
            })
            .collect()
    }

    // ---- quantification schedules -------------------------------------

    /// Builds the early-quantification schedule for eliminating `vars`
    /// from the conjunction of `operands` (in the given order): each
    /// variable is assigned to the last operand whose support contains it.
    pub fn quant_schedule(&self, operands: &[Func], vars: &[VarId]) -> QuantSchedule {
        self.quant_schedule_many(operands, &[vars]).pop().unwrap()
    }

    /// Builds several schedules over the same operand sequence — one per
    /// variable list — computing each operand's support only once.
    pub fn quant_schedule_many(
        &self,
        operands: &[Func],
        var_lists: &[&[VarId]],
    ) -> Vec<QuantSchedule> {
        let refs = self.raw_operands(operands);
        let inner = self.inner.borrow();
        inner.quant_schedule_many(&refs, var_lists)
    }

    /// Schedule-driven relational product `∃ vars. (seed ∧ ⋀ operands)`,
    /// where `schedule` was built by [`BddManager::quant_schedule`] over
    /// the same `operands` and `vars`.
    ///
    /// # Panics
    ///
    /// Panics if `schedule.len() != operands.len()`.
    pub fn and_exists_schedule(
        &self,
        seed: &Func,
        operands: &[Func],
        schedule: &QuantSchedule,
    ) -> Func {
        self.check_same_mgr(seed);
        let refs = self.raw_operands(operands);
        let mut inner = self.inner.borrow_mut();
        let seed_r = seed.raw(&inner);
        let r = inner.and_exists_schedule(seed_r, &refs, schedule);
        Func::wrap(&self.inner, &mut inner, r)
    }

    /// Multi-operand fused relational product `∃ vars. ⋀ operands`,
    /// eliminating each variable at the earliest operand where its
    /// support ends (the schedule is built on the fly).
    pub fn and_exists_multi(&self, operands: &[Func], vars: &[VarId]) -> Func {
        let schedule = self.quant_schedule(operands, vars);
        let seed = self.constant(true);
        self.and_exists_schedule(&seed, operands, &schedule)
    }

    // ---- reordering and collection ------------------------------------

    /// Declares that `vars` form a reordering group: they must currently
    /// occupy adjacent levels, and sifting will move them as one block,
    /// preserving their relative order. Typical use: a state bit's
    /// (current, next) variable pair.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two variables are given, if any variable is
    /// already grouped, or if the variables are not adjacent in the
    /// current order.
    pub fn group_vars(&self, vars: &[VarId]) {
        self.inner.borrow_mut().group_vars(vars);
    }

    /// The reorder group containing `var`, in level order, if any.
    pub fn group_of(&self, var: VarId) -> Option<Vec<VarId>> {
        self.inner.borrow().group_of(var)
    }

    /// The current reordering configuration.
    pub fn reorder_config(&self) -> ReorderConfig {
        self.inner.borrow().reorder_config().clone()
    }

    /// Replaces the reordering configuration (and re-arms the automatic
    /// trigger at the configured threshold).
    pub fn set_reorder_config(&self, config: ReorderConfig) {
        self.inner.borrow_mut().set_reorder_config(config);
    }

    /// The complete current variable order, topmost level first.
    pub fn current_order(&self) -> Vec<VarId> {
        self.inner.borrow().current_order()
    }

    /// Sifts variables to shrink the BDDs reachable from the live
    /// [`Func`] handles. Takes no roots: the external-root table *is* the
    /// live set, so every handle survives with unchanged meaning.
    /// Everything else (dead intermediate results) is collected. No-op
    /// when reordering is [`crate::ReorderMode::Off`] or no handle is
    /// live.
    pub fn reduce_heap(&self) -> ReorderStats {
        self.inner.borrow_mut().reduce_heap(&[])
    }

    /// Automatic-reorder checkpoint: runs [`BddManager::reduce_heap`] if
    /// the mode is [`crate::ReorderMode::Auto`] and the live-node count
    /// has crossed the current threshold. Safe to call at any point —
    /// live handles pin themselves.
    pub fn maybe_reduce_heap(&self) -> Option<ReorderStats> {
        self.inner.borrow_mut().maybe_reduce_heap(&[])
    }

    /// Applies an explicit variable order (levels top to bottom) by
    /// swapping adjacent levels; every handle stays valid.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all variables, or if it
    /// tears a declared group apart or reverses a group's internal order.
    pub fn set_order(&self, order: &[VarId]) {
        self.inner.borrow_mut().set_order(&[], order);
    }

    /// Garbage-collects every node not reachable from a live [`Func`].
    /// Takes no roots — handle ownership is the root set. All operation
    /// caches are dropped. Returns the number of freed node slots.
    pub fn gc(&self) -> usize {
        self.inner.borrow_mut().gc(&[])
    }

    /// Drops all memoization caches (ITE plus the quantification scratch
    /// maps) without collecting any nodes.
    pub fn clear_caches(&self) {
        self.inner.borrow_mut().clear_caches();
    }

    // ---- engine counters ----------------------------------------------

    /// Snapshot of the deterministic engine counters: unique-table and
    /// memo hits/misses, gc and reorder activity, and the live-node
    /// high-water mark. See [`crate::BddStats`] for field semantics.
    pub fn stats(&self) -> BddStats {
        self.inner.borrow().stats()
    }

    /// Zeroes the engine counters, restarting the `peak_live_nodes`
    /// high-water mark at the current live-node count (never at zero).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().reset_stats();
    }

    // ---- export -------------------------------------------------------

    /// Renders the graph of the named functions in Graphviz DOT format.
    ///
    /// Solid edges are `hi` (variable true), dashed edges are `lo`.
    /// Named variables (see [`BddManager::set_var_name`]) are used as
    /// labels.
    pub fn to_dot(&self, roots: &[(&str, &Func)]) -> String {
        let inner = self.inner.borrow();
        let pairs: Vec<(&str, Ref)> = roots.iter().map(|&(n, f)| (n, f.raw(&inner))).collect();
        inner.to_dot(&pairs)
    }
}

/// An owned handle to a Boolean function on a [`BddManager`].
///
/// The handle pins its function in the manager's external-root table:
/// garbage collection and dynamic reordering keep every live `Func` valid
/// and meaning-preserving, with no caller-side bookkeeping. `Clone` and
/// `Drop` are O(1).
///
/// Because the manager hash-conses nodes, two `Func`s on the same manager
/// compare equal **iff** they denote the same Boolean function
/// (canonicity); handles from different managers are never equal.
///
/// All operations go through the shared manager handle carried by the
/// `Func`, so no `&mut` manager threading is needed: `f.and(&g)`,
/// `&f | &g`, `f.node_count()`, … just work.
pub struct Func {
    mgr: Rc<RefCell<Inner>>,
    slot: u32,
}

impl Func {
    /// Wraps a raw engine result into an owned, rooted handle.
    pub(crate) fn wrap(mgr: &Rc<RefCell<Inner>>, inner: &mut Inner, r: Ref) -> Func {
        let slot = match r {
            Ref::FALSE => SLOT_FALSE,
            Ref::TRUE => SLOT_TRUE,
            _ => inner.ext_alloc(r),
        };
        Func {
            mgr: mgr.clone(),
            slot,
        }
    }

    /// The raw node this handle currently pins.
    pub(crate) fn raw(&self, inner: &Inner) -> Ref {
        match self.slot {
            SLOT_FALSE => Ref::FALSE,
            SLOT_TRUE => Ref::TRUE,
            s => inner.ext_ref(s),
        }
    }

    /// A manager handle for the engine this function lives on.
    pub fn manager(&self) -> BddManager {
        BddManager {
            inner: self.mgr.clone(),
        }
    }

    #[inline]
    fn assert_same_mgr(&self, other: &Func) {
        // A hard assert: in release builds a wrong-manager slot would
        // index this engine's root table and resolve to an unrelated
        // function (or panic out of bounds) — a silently wrong result,
        // not a safety net. The check is trivial next to any BDD op.
        assert!(
            Rc::ptr_eq(&self.mgr, &other.mgr),
            "Func handles belong to different managers"
        );
    }

    fn unop(&self, op: impl FnOnce(&mut Inner, Ref) -> Ref) -> Func {
        let mut inner = self.mgr.borrow_mut();
        let a = self.raw(&inner);
        let r = op(&mut inner, a);
        Func::wrap(&self.mgr, &mut inner, r)
    }

    fn binop(&self, other: &Func, op: impl FnOnce(&mut Inner, Ref, Ref) -> Ref) -> Func {
        self.assert_same_mgr(other);
        let mut inner = self.mgr.borrow_mut();
        let (a, b) = (self.raw(&inner), other.raw(&inner));
        let r = op(&mut inner, a, b);
        Func::wrap(&self.mgr, &mut inner, r)
    }

    // ---- predicates ---------------------------------------------------

    /// `true` if this is the constant-true function.
    pub fn is_true(&self) -> bool {
        self.slot == SLOT_TRUE
    }

    /// `true` if this is the constant-false function.
    pub fn is_false(&self) -> bool {
        self.slot == SLOT_FALSE
    }

    /// `true` if this is a constant function.
    pub fn is_const(&self) -> bool {
        self.is_true() || self.is_false()
    }

    // ---- connectives --------------------------------------------------

    /// Logical negation.
    pub fn not(&self) -> Func {
        self.unop(|i, a| i.not(a))
    }

    /// Logical conjunction.
    pub fn and(&self, other: &Func) -> Func {
        self.binop(other, |i, a, b| i.and(a, b))
    }

    /// Logical disjunction.
    pub fn or(&self, other: &Func) -> Func {
        self.binop(other, |i, a, b| i.or(a, b))
    }

    /// Exclusive or.
    pub fn xor(&self, other: &Func) -> Func {
        self.binop(other, |i, a, b| i.xor(a, b))
    }

    /// Biconditional (xnor).
    pub fn iff(&self, other: &Func) -> Func {
        self.binop(other, |i, a, b| i.iff(a, b))
    }

    /// Implication `self → other`.
    pub fn implies(&self, other: &Func) -> Func {
        self.binop(other, |i, a, b| i.implies(a, b))
    }

    /// Difference `self ∧ ¬other`.
    pub fn diff(&self, other: &Func) -> Func {
        self.binop(other, |i, a, b| i.diff(a, b))
    }

    /// If-then-else with `self` as the condition:
    /// `(self ∧ g) ∨ (¬self ∧ h)`.
    pub fn ite(&self, g: &Func, h: &Func) -> Func {
        self.assert_same_mgr(g);
        self.assert_same_mgr(h);
        let mut inner = self.mgr.borrow_mut();
        let (f, gr, hr) = (self.raw(&inner), g.raw(&inner), h.raw(&inner));
        let r = inner.ite(f, gr, hr);
        Func::wrap(&self.mgr, &mut inner, r)
    }

    /// Returns `true` if `self → other` is a tautology (set inclusion).
    pub fn leq(&self, other: &Func) -> bool {
        self.assert_same_mgr(other);
        let mut inner = self.mgr.borrow_mut();
        let (a, b) = (self.raw(&inner), other.raw(&inner));
        inner.leq(a, b)
    }

    // ---- quantification and substitution ------------------------------

    /// Existential quantification `∃ vars. self`.
    pub fn exists(&self, vars: &[VarId]) -> Func {
        self.unop(|i, a| i.exists(a, vars))
    }

    /// Universal quantification `∀ vars. self`.
    pub fn forall(&self, vars: &[VarId]) -> Func {
        self.unop(|i, a| i.forall(a, vars))
    }

    /// Fused relational product `∃ vars. (self ∧ other)`.
    pub fn and_exists(&self, other: &Func, vars: &[VarId]) -> Func {
        self.binop(other, |i, a, b| i.and_exists(a, b, vars))
    }

    /// Shannon cofactor by a literal: `self` with `var` fixed to `value`.
    pub fn cofactor(&self, var: VarId, value: bool) -> Func {
        self.unop(|i, a| i.cofactor(a, var, value))
    }

    /// Cofactors by a partial assignment given as literals.
    pub fn cofactor_cube(&self, literals: &[(VarId, bool)]) -> Func {
        self.unop(|i, a| i.cofactor_cube(a, literals))
    }

    // ---- don't-care simplification ------------------------------------

    /// Coudert–Madre generalized cofactor: simplifies `self` modulo the
    /// care set, with `self.constrain(c) & c == self & c`. Off the care
    /// set the result is unconstrained; it may grow the BDD and pull
    /// `care`'s variables into the support. `constrain(f, true) == f`.
    pub fn constrain(&self, care: &Func) -> Func {
        self.binop(care, |i, a, b| i.constrain(a, b))
    }

    /// Coudert–Madre `restrict` (sibling substitution), size-safe:
    /// simplifies `self` modulo the care set without leaving `self`'s
    /// support or growing the BDD — if the recursion would grow it,
    /// `self` is returned unchanged. Same identity as
    /// [`Func::constrain`]: `self.restrict(c) & c == self & c`.
    pub fn restrict(&self, care: &Func) -> Func {
        self.binop(care, |i, a, b| i.restrict(a, b))
    }

    /// Functional composition: `self` with `var` replaced by `g`.
    pub fn compose(&self, var: VarId, g: &Func) -> Func {
        self.binop(g, |i, a, b| i.compose(a, var, b))
    }

    /// Simultaneous functional composition: every variable in `map` is
    /// replaced by the associated function, all at once.
    pub fn vector_compose(&self, map: &[(VarId, Func)]) -> Func {
        let mut inner = self.mgr.borrow_mut();
        let a = self.raw(&inner);
        let raw_map: Vec<(VarId, Ref)> = map.iter().map(|(v, g)| (*v, g.raw(&inner))).collect();
        let r = inner.vector_compose(a, &raw_map);
        Func::wrap(&self.mgr, &mut inner, r)
    }

    /// Renames variables according to `pairs`, interpreted as a
    /// simultaneous swap-free mapping `from → to`.
    pub fn rename(&self, pairs: &[(VarId, VarId)]) -> Func {
        self.unop(|i, a| i.rename(a, pairs))
    }

    /// Swaps each pair of variables in both directions simultaneously
    /// (`a ↔ b` for every `(a, b)` in `pairs`).
    pub fn swap_vars(&self, pairs: &[(VarId, VarId)]) -> Func {
        self.unop(|i, a| i.swap(a, pairs))
    }

    // ---- inspection ---------------------------------------------------

    /// Evaluates the function under a total assignment.
    ///
    /// The manager stays (shared-)borrowed for the whole walk: the
    /// assignment closure may *read* the manager, but a mutating call
    /// (new ops, gc, reordering) panics on the borrow — the traversal
    /// follows interior nodes that a collection could recycle.
    pub fn eval(&self, assignment: &dyn Fn(VarId) -> bool) -> bool {
        // Hold a shared borrow for the whole walk: the traversal follows
        // interior refs that are not individually rooted, so a mutating
        // manager call from the closure (which could reorder or collect
        // mid-walk) must panic on the borrow rather than silently walk
        // freed nodes. Read-only manager calls still work.
        let inner = self.mgr.borrow();
        let mut cur = self.raw(&inner);
        loop {
            if cur.is_const() {
                return cur.is_true();
            }
            let n = inner.node(cur);
            cur = if assignment(VarId::from_index(n.var as usize)) {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Number of distinct decision nodes reachable from this function
    /// (excluding terminals) — the usual "BDD size" metric.
    pub fn node_count(&self) -> usize {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.node_count(a)
    }

    /// The set of variables appearing in the function, sorted by index.
    pub fn support(&self) -> Vec<VarId> {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.support(a)
    }

    /// The variable labelling the root node.
    ///
    /// # Panics
    ///
    /// Panics if the function is constant.
    pub fn root_var(&self) -> VarId {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.root_var(a)
    }

    /// The cofactors `(lo, hi)` of the root node.
    ///
    /// # Panics
    ///
    /// Panics if the function is constant.
    pub fn children(&self) -> (Func, Func) {
        let mut inner = self.mgr.borrow_mut();
        let a = self.raw(&inner);
        let (lo, hi) = inner.children(a);
        (
            Func::wrap(&self.mgr, &mut inner, lo),
            Func::wrap(&self.mgr, &mut inner, hi),
        )
    }

    /// Fraction of assignments (over all variables) satisfying the
    /// function, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.density(a)
    }

    /// Number of satisfying assignments over the variable universe
    /// `vars`, as a floating-point value.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the support is not contained in `vars`.
    pub fn sat_count_over(&self, vars: &[VarId]) -> f64 {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.sat_count_over(a, vars)
    }

    /// Exact number of satisfying assignments over `vars` (universe of at
    /// most 127 variables).
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() > 127`; in debug builds also panics when the
    /// support is not contained in `vars`.
    pub fn sat_count_exact(&self, vars: &[VarId]) -> u128 {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.sat_count_exact(a, vars)
    }

    /// Returns one satisfying assignment over `vars` (the
    /// lexicographically smallest w.r.t. the variable order, lows first),
    /// or `None` if the function is unsatisfiable.
    pub fn pick_minterm(&self, vars: &[VarId]) -> Option<Vec<(VarId, bool)>> {
        let inner = self.mgr.borrow();
        let a = self.raw(&inner);
        inner.pick_minterm(a, vars)
    }

    /// Iterates over the satisfying *cubes*: partial assignments
    /// labelling each root-to-`TRUE` path. Variables absent from a cube
    /// are unconstrained.
    ///
    /// The iterator holds a clone of the handle, so the traversal is
    /// safe across garbage collection (its interior nodes stay reachable
    /// from the pinned root). Reordering between `next()` calls is NOT
    /// safe — sifting restructures the graph under the iterator's saved
    /// cursor — so do not run `reduce_heap`/`set_order` (or auto-mode
    /// checkpoints) mid-iteration; collect first if you need to.
    pub fn cubes(&self) -> Cubes {
        let start = {
            let inner = self.mgr.borrow();
            self.raw(&inner)
        };
        Cubes {
            _pin: self.clone(),
            stack: if start.is_false() {
                vec![]
            } else {
                vec![(start, Vec::new())]
            },
        }
    }

    /// Iterates over the full minterms with respect to the variable
    /// universe `vars` (each item is aligned with `vars`).
    ///
    /// Same caveat as [`Func::cubes`]: safe across GC (the handle pins
    /// its nodes), but reordering between `next()` calls is not — the
    /// iterator walks saved interior cursors and a level order captured
    /// at creation time.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the support is not contained in `vars`.
    pub fn minterms_over(&self, vars: &[VarId]) -> Minterms {
        let inner = self.mgr.borrow();
        let start = self.raw(&inner);
        debug_assert!(
            {
                let sup = inner.support(start);
                let set: std::collections::HashSet<VarId> = vars.iter().copied().collect();
                sup.iter().all(|v| set.contains(v))
            },
            "support must be within the minterm universe"
        );
        let mut ordered: Vec<VarId> = vars.to_vec();
        ordered.sort_by_key(|&v| inner.level_of(v));
        drop(inner);
        Minterms {
            _pin: self.clone(),
            vars: ordered,
            out_order: vars.to_vec(),
            stack: if start.is_false() {
                vec![]
            } else {
                vec![(start, 0, Vec::new())]
            },
        }
    }
}

impl Clone for Func {
    fn clone(&self) -> Self {
        if self.slot != SLOT_FALSE && self.slot != SLOT_TRUE {
            self.mgr.borrow_mut().ext_inc(self.slot);
        }
        Func {
            mgr: self.mgr.clone(),
            slot: self.slot,
        }
    }
}

impl Drop for Func {
    fn drop(&mut self) {
        if self.slot == SLOT_FALSE || self.slot == SLOT_TRUE {
            return;
        }
        // A failed borrow can only happen while unwinding out of a
        // manager operation; leaking one root slot is the safe choice.
        if let Ok(mut inner) = self.mgr.try_borrow_mut() {
            inner.ext_dec(self.slot);
        }
    }
}

impl PartialEq for Func {
    fn eq(&self, other: &Self) -> bool {
        if !Rc::ptr_eq(&self.mgr, &other.mgr) {
            return false;
        }
        let inner = self.mgr.borrow();
        self.raw(&inner) == other.raw(&inner)
    }
}

impl Eq for Func {}

impl std::hash::Hash for Func {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let inner = self.mgr.borrow();
        self.raw(&inner).hash(state);
    }
}

impl std::fmt::Debug for Func {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.mgr.borrow();
        write!(f, "Func({})", self.raw(&inner))
    }
}

impl std::ops::Not for &Func {
    type Output = Func;
    fn not(self) -> Func {
        Func::not(self)
    }
}

impl std::ops::Not for Func {
    type Output = Func;
    fn not(self) -> Func {
        Func::not(&self)
    }
}

macro_rules! func_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl std::ops::$trait for &Func {
            type Output = Func;
            fn $method(self, rhs: &Func) -> Func {
                Func::$impl_method(self, rhs)
            }
        }
        impl std::ops::$trait for Func {
            type Output = Func;
            fn $method(self, rhs: Func) -> Func {
                Func::$impl_method(&self, &rhs)
            }
        }
    };
}

func_binop!(BitAnd, bitand, and);
func_binop!(BitOr, bitor, or);
func_binop!(BitXor, bitxor, xor);

/// Iterator over satisfying cubes; see [`Func::cubes`].
#[derive(Debug)]
pub struct Cubes {
    /// Keeps the traversed function rooted for the iterator's lifetime.
    _pin: Func,
    stack: Vec<(Ref, Vec<(VarId, bool)>)>,
}

impl Iterator for Cubes {
    type Item = Vec<(VarId, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        let inner = self._pin.mgr.borrow();
        while let Some((r, path)) = self.stack.pop() {
            if r.is_true() {
                return Some(path);
            }
            if r.is_false() {
                continue;
            }
            let n = inner.node(r);
            let v = VarId::from_index(n.var as usize);
            if !n.hi.is_false() {
                let mut p = path.clone();
                p.push((v, true));
                self.stack.push((n.hi, p));
            }
            if !n.lo.is_false() {
                let mut p = path;
                p.push((v, false));
                self.stack.push((n.lo, p));
            }
        }
        None
    }
}

/// Iterator over full minterms; see [`Func::minterms_over`].
#[derive(Debug)]
pub struct Minterms {
    /// Keeps the traversed function rooted for the iterator's lifetime.
    _pin: Func,
    /// Universe ordered by level at creation time.
    vars: Vec<VarId>,
    /// Universe in caller order, used for the output layout.
    out_order: Vec<VarId>,
    /// (node, index into `vars`, values chosen so far — parallel to `vars`).
    stack: Vec<(Ref, usize, Vec<bool>)>,
}

impl Iterator for Minterms {
    type Item = Vec<(VarId, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        let inner = self._pin.mgr.borrow();
        while let Some((r, idx, values)) = self.stack.pop() {
            if r.is_false() {
                continue;
            }
            if idx == self.vars.len() {
                debug_assert!(r.is_true());
                let map: std::collections::HashMap<VarId, bool> = self
                    .vars
                    .iter()
                    .copied()
                    .zip(values.iter().copied())
                    .collect();
                return Some(self.out_order.iter().map(|&v| (v, map[&v])).collect());
            }
            let v = self.vars[idx];
            let node_level = inner.level(r);
            let var_level = inner.level_of(v);
            if !r.is_const() && node_level == var_level {
                let n = inner.node(r);
                let mut hi_values = values.clone();
                hi_values.push(true);
                self.stack.push((n.hi, idx + 1, hi_values));
                let mut lo_values = values;
                lo_values.push(false);
                self.stack.push((n.lo, idx + 1, lo_values));
            } else {
                // Variable unconstrained at this point: branch on it.
                let mut hi_values = values.clone();
                hi_values.push(true);
                self.stack.push((r, idx + 1, hi_values));
                let mut lo_values = values;
                lo_values.push(false);
                self.stack.push((r, idx + 1, lo_values));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_drop_track_root_slots() {
        let mgr = BddManager::new();
        let x = mgr.new_var();
        let fx = mgr.var(x);
        assert_eq!(mgr.live_roots(), 1);
        let fx2 = fx.clone();
        assert_eq!(mgr.live_roots(), 1, "clones share a slot");
        let nx = fx.not();
        assert_eq!(mgr.live_roots(), 2);
        drop(fx);
        assert_eq!(mgr.live_roots(), 2, "clone still pins the slot");
        drop(fx2);
        assert_eq!(mgr.live_roots(), 1);
        drop(nx);
        assert_eq!(mgr.live_roots(), 0);
    }

    #[test]
    fn constants_are_virtual_roots() {
        let mgr = BddManager::new();
        let t = mgr.constant(true);
        let f = mgr.constant(false);
        assert_eq!(mgr.live_roots(), 0);
        assert!(t.is_true() && f.is_false());
        assert_eq!(t.clone(), t);
        assert_ne!(t, f);
    }

    #[test]
    fn gc_without_roots_frees_everything() {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(6);
        {
            let lits: Vec<Func> = vars.iter().map(|&v| mgr.var(v)).collect();
            let _f = mgr.and_many(&lits);
            assert!(mgr.live_nodes() > 2);
        }
        mgr.gc();
        assert_eq!(mgr.live_nodes(), 2, "terminal-only baseline");
    }

    #[test]
    fn live_handles_survive_gc_and_reorder() {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(6);
        let lits: Vec<Func> = vars.iter().map(|&v| mgr.var(v)).collect();
        let mut f = mgr.constant(false);
        for pair in lits.chunks(2) {
            f = f.or(&pair[0].and(&pair[1]));
        }
        let truth: Vec<bool> = (0..64u32)
            .map(|bits| f.eval(&|v| bits >> v.index() & 1 == 1))
            .collect();
        mgr.gc();
        mgr.reduce_heap();
        let after: Vec<bool> = (0..64u32)
            .map(|bits| f.eval(&|v| bits >> v.index() & 1 == 1))
            .collect();
        assert_eq!(truth, after);
    }

    #[test]
    fn operator_sugar_matches_methods() {
        let mgr = BddManager::new();
        let x = mgr.new_var();
        let y = mgr.new_var();
        let (fx, fy) = (mgr.var(x), mgr.var(y));
        assert_eq!(&fx & &fy, fx.and(&fy));
        assert_eq!(&fx | &fy, fx.or(&fy));
        assert_eq!(&fx ^ &fy, fx.xor(&fy));
        assert_eq!(!&fx, fx.not());
        assert_eq!(fx.clone() & fy.clone(), fx.and(&fy));
    }

    #[test]
    fn cubes_and_minterms_are_lazy_and_rooted() {
        let mgr = BddManager::new();
        let vars = mgr.new_vars(3);
        let f = mgr.var(vars[0]).or(&mgr.var(vars[2]).not());
        let count = f.minterms_over(&vars).count() as u128;
        assert_eq!(count, f.sat_count_exact(&vars));
        let mut rebuilt = mgr.constant(false);
        for cube in f.cubes() {
            let mut c = mgr.constant(true);
            for (v, val) in cube {
                c = c.and(&mgr.literal(v, val));
            }
            rebuilt = rebuilt.or(&c);
        }
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn funcs_from_different_managers_are_unequal() {
        let m1 = BddManager::new();
        let m2 = BddManager::new();
        let x1 = m1.var(m1.new_var());
        let x2 = m2.var(m2.new_var());
        assert_ne!(x1, x2);
        assert!(!m1.same_manager(&m2));
        assert!(m1.same_manager(&x1.manager()));
    }
}
