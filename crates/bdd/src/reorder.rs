//! Dynamic variable reordering: in-place adjacent-level swaps and
//! Rudell-style sifting with variable groups.
//!
//! # Safety model
//!
//! The live set of [`crate::BddManager::reduce_heap`] is the manager's
//! external-root table: every [`crate::Func`] handle owns a root slot, so
//! the table is the complete set of externally reachable functions by
//! construction. Reordering first collects everything unreachable from
//! the roots, then sifts, freeing nodes the moment swaps orphan them
//! (tracked with transient reference counts) so the table never balloons
//! mid-sift. Rooted handles keep their slots — the swap primitive
//! rewrites nodes *in place*, label and cofactors rebuilt for the new
//! order — and therefore every `Func` stays valid and denotes the same
//! function across any number of reorderings.
//!
//! With no live roots, sifting is a no-op (it needs a live set to
//! measure). [`crate::BddManager::set_order`], by contrast, pins every
//! allocated node (applying a permutation needs no metric).
//!
//! Internally the entry points take an `extra` pin list on top of the
//! root table; it is used by in-crate tests and is always empty on the
//! public paths.
//!
//! # Groups
//!
//! [`crate::BddManager::group_vars`] declares a run of adjacent variables
//! that must stay adjacent — the FSM layer groups each state bit's
//! (current, next) pair, the standard requirement for transition-relation
//! orders. Sifting moves a group as one block and never reorders within
//! it.

use crate::manager::Inner;
use crate::node::{PackedNode, Ref, VarId, FREE_VAR};

/// When reordering runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderMode {
    /// Never reorder; [`crate::BddManager::reduce_heap`] is a no-op.
    Off,
    /// Reorder only on explicit [`crate::BddManager::reduce_heap`] calls.
    #[default]
    Sift,
    /// Additionally reorder automatically when the live-node count passes
    /// the configured growth threshold (checked at the safe points where
    /// higher layers call [`crate::BddManager::maybe_reduce_heap`]).
    Auto,
}

impl std::str::FromStr for ReorderMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ReorderMode::Off),
            "sift" => Ok(ReorderMode::Sift),
            "auto" => Ok(ReorderMode::Auto),
            other => Err(format!(
                "unknown reorder mode `{other}` (expected off|sift|auto)"
            )),
        }
    }
}

/// Configuration for dynamic reordering; set with
/// [`crate::BddManager::set_reorder_config`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderConfig {
    /// When reordering runs.
    pub mode: ReorderMode,
    /// Live-node count that arms the first automatic reordering
    /// (mode [`ReorderMode::Auto`] only).
    pub auto_threshold: usize,
    /// After an automatic reordering, the next trigger is the current
    /// live-node count times this factor (at least `auto_threshold`).
    pub auto_scale: f64,
    /// A sift move aborts early once the live size exceeds the best size
    /// seen for the block by this factor (Rudell's maxGrowth).
    pub max_growth: f64,
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig {
            mode: ReorderMode::Sift,
            auto_threshold: 4096,
            auto_scale: 2.0,
            max_growth: 1.2,
        }
    }
}

/// What a reordering accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReorderStats {
    /// Live nodes (reachable from the roots) before sifting.
    pub before: usize,
    /// Live nodes after sifting.
    pub after: usize,
    /// Adjacent-level swaps performed.
    pub swaps: usize,
    /// Blocks (groups or single variables) sifted.
    pub blocks_sifted: usize,
}

impl ReorderStats {
    /// Fractional size reduction in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Transient bookkeeping for one reordering: per-slot reference counts
/// (parent edges plus root pins) driving eager reclamation of nodes the
/// swaps orphan.
struct ReorderCtx {
    rc: Vec<u32>,
    swaps: usize,
    /// Scratch buffer for the nodes a swap rewrites, reused across all
    /// swaps of one reordering so the hot loop never allocates.
    moved: Vec<Ref>,
    /// Scratch for the level's survivors, feeding the batch-rebuild
    /// unlink path of [`Inner::swap_levels`].
    kept: Vec<u32>,
}

impl Inner {
    /// Declares that `vars` form a reordering group: they must currently
    /// occupy adjacent levels, and sifting will move them as one block,
    /// preserving their relative order. Typical use: a state bit's
    /// (current, next) variable pair.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two variables are given, if any variable is
    /// already grouped, or if the variables are not adjacent in the
    /// current order.
    pub fn group_vars(&mut self, vars: &[VarId]) {
        assert!(
            vars.len() >= 2,
            "a reorder group needs at least two variables"
        );
        let mut levels: Vec<u32> = vars.iter().map(|&v| self.var2level[v.index()]).collect();
        levels.sort_unstable();
        assert!(
            levels.windows(2).all(|w| w[1] == w[0] + 1),
            "reorder group variables must occupy adjacent levels"
        );
        for &v in vars {
            assert!(
                self.var_group[v.index()].is_none(),
                "variable {v} is already in a reorder group"
            );
        }
        let gid = self.groups.len() as u32;
        let mut members: Vec<u32> = vars.iter().map(|&v| v.0).collect();
        members.sort_unstable_by_key(|&v| self.var2level[v as usize]);
        for &v in &members {
            self.var_group[v as usize] = Some(gid);
        }
        self.groups.push(members);
    }

    /// The reorder group containing `var`, in level order, if any.
    pub fn group_of(&self, var: VarId) -> Option<Vec<VarId>> {
        let gid = self.var_group[var.index()]?;
        Some(
            self.groups[gid as usize]
                .iter()
                .map(|&v| VarId(v))
                .collect(),
        )
    }

    /// The current reordering configuration.
    pub fn reorder_config(&self) -> &ReorderConfig {
        &self.reorder
    }

    /// Replaces the reordering configuration (and re-arms the automatic
    /// trigger at the configured threshold).
    pub fn set_reorder_config(&mut self, config: ReorderConfig) {
        self.next_auto_threshold = config.auto_threshold;
        self.reorder = config;
    }

    /// The complete current variable order, topmost level first.
    pub fn current_order(&self) -> Vec<VarId> {
        self.level2var.iter().map(|&v| VarId(v)).collect()
    }

    /// Sifts variables to shrink the BDDs reachable from the external-root
    /// table plus the `extra` pins (in-crate tests only; empty on the
    /// public path).
    ///
    /// Everything unreachable from that live set is collected before and
    /// during the sift. Rooted handles keep their slots and their
    /// meanings. With no live roots at all this is a no-op (sifting has
    /// no live set to measure).
    ///
    /// All persistent operation caches are invalidated.
    pub fn reduce_heap(&mut self, extra: &[Ref]) -> ReorderStats {
        if self.reorder.mode == ReorderMode::Off {
            return ReorderStats::default();
        }
        if extra.is_empty() && self.ext_live() == 0 {
            return ReorderStats::default();
        }
        self.clear_caches();
        let mut ctx = self.rooted_ctx(extra);
        let before = self.live_nodes() - 2;
        let blocks_sifted = self.sift_all(&mut ctx);
        let after = self.live_nodes() - 2;
        self.compact_tables();
        debug_assert!(self.check_reorder_invariants(&ctx));
        self.stats.reorder_invocations += 1;
        self.stats.reorder_swaps += ctx.swaps as u64;
        self.stats.reorder_size_before += before as u64;
        self.stats.reorder_size_after += after as u64;
        ReorderStats {
            before,
            after,
            swaps: ctx.swaps,
            blocks_sifted,
        }
    }

    /// Collects against `extra` ∪ root table and builds the refcount
    /// context pinning that combined live set.
    fn rooted_ctx(&mut self, extra: &[Ref]) -> ReorderCtx {
        let mut pinned = extra.to_vec();
        self.ext_roots_into(&mut pinned);
        self.gc(extra);
        self.reorder_ctx(&pinned)
    }

    /// Automatic-reorder checkpoint: runs [`Inner::reduce_heap`] if the
    /// mode is [`ReorderMode::Auto`] and the live-node count has crossed
    /// the current threshold. Because every live handle is in the root
    /// table, this is safe to call at any point.
    pub fn maybe_reduce_heap(&mut self, extra: &[Ref]) -> Option<ReorderStats> {
        if self.reorder.mode != ReorderMode::Auto || self.live_nodes() < self.next_auto_threshold {
            return None;
        }
        let stats = self.reduce_heap(extra);
        let rearm = (self.live_nodes() as f64 * self.reorder.auto_scale) as usize;
        self.next_auto_threshold = rearm.max(self.reorder.auto_threshold);
        Some(stats)
    }

    // ---- refcount bookkeeping -----------------------------------------

    /// Live decision nodes (terminals excluded) — the metric sifting
    /// minimizes. O(1): slots minus the free list.
    fn live_size(&self) -> u64 {
        (self.live_nodes() - 2) as u64
    }

    /// Builds reference counts: one per parent edge in the table, plus one
    /// pin per root occurrence (or a pin on every allocated slot when
    /// `roots` is empty). Callers run [`Inner::gc`] first when using
    /// explicit roots, so the table holds exactly the reachable nodes.
    fn reorder_ctx(&self, roots: &[Ref]) -> ReorderCtx {
        let mut rc = vec![0u32; self.nodes.len()];
        for slot in 2..self.nodes.len() as u32 {
            let n = self.nodes[slot as usize];
            if n.var == FREE_VAR {
                continue;
            }
            if roots.is_empty() {
                rc[slot as usize] += 1; // pin-all mode
            }
            for child in [n.lo, n.hi] {
                if !child.is_const() {
                    rc[child.index()] += 1;
                }
            }
        }
        for &r in roots {
            if !r.is_const() {
                rc[r.index()] += 1;
            }
        }
        ReorderCtx {
            rc,
            swaps: 0,
            moved: Vec::new(),
            kept: Vec::new(),
        }
    }

    /// `rc -= 1`; a node that loses its last reference is reclaimed on the
    /// spot — removed from the unique table, its slot recycled, its child
    /// edges released (cascading).
    fn dec_ref(&mut self, r: Ref, ctx: &mut ReorderCtx) {
        if r.is_const() {
            return;
        }
        debug_assert!(ctx.rc[r.index()] > 0, "refcount underflow in reorder");
        ctx.rc[r.index()] -= 1;
        if ctx.rc[r.index()] == 0 {
            let n = self.nodes[r.index()];
            // Unlink from the unique table (the node is still intact, so
            // the probe can compare its key), then recycle the slot.
            let removed = self.unique[n.var as usize].remove(&self.nodes, n.lo, n.hi);
            debug_assert!(removed, "reclaimed node was not in its unique table");
            self.free_node(r.0);
            self.dec_ref(n.lo, ctx);
            self.dec_ref(n.hi, ctx);
        }
    }

    /// Hash-consed constructor used during swaps; returns the node with
    /// one reference added for the caller's new edge.
    fn reorder_mk(&mut self, var: u32, lo: Ref, hi: Ref, ctx: &mut ReorderCtx) -> Ref {
        if lo == hi {
            if !lo.is_const() {
                ctx.rc[lo.index()] += 1;
            }
            return lo;
        }
        self.unique[var as usize].reserve(&self.nodes);
        let pos = match self.unique[var as usize].probe(&self.nodes, lo, hi) {
            Ok(r) => {
                ctx.rc[r.index()] += 1;
                return r;
            }
            Err(pos) => pos,
        };
        let r = self.alloc_node(var, lo, hi);
        if r.index() == ctx.rc.len() {
            ctx.rc.push(0); // arena grew: track the new slot
        }
        self.unique[var as usize].fill(pos, r.0);
        ctx.rc[r.index()] = 1;
        if !lo.is_const() {
            ctx.rc[lo.index()] += 1;
        }
        if !hi.is_const() {
            ctx.rc[hi.index()] += 1;
        }
        r
    }

    // ---- the swap primitive -------------------------------------------

    /// Swaps the variables at `level` and `level + 1`, rewriting the
    /// affected upper-level nodes in place so no handle is invalidated.
    fn swap_levels(&mut self, level: u32, ctx: &mut ReorderCtx) {
        let xv = self.level2var[level as usize];
        let yv = self.level2var[level as usize + 1];
        // Nodes labelled x that depend on y must be rewritten; the rest of
        // x's level just sinks one level with no structural change. The
        // open-addressed table yields them in deterministic slot order,
        // into buffers reused across every swap of this reordering.
        let nodes = &self.nodes;
        let mut moved = std::mem::take(&mut ctx.moved);
        moved.clear();
        moved.extend(self.unique[xv as usize].iter_refs().filter(|&r| {
            let n = nodes[r.index()];
            nodes[n.lo.index()].var == yv || nodes[n.hi.index()].var == yv
        }));
        // Unlink the movers. When most of the level moves at once — the
        // common case while `set_order` drags a variable across the
        // order, where every node of the passing level tends to depend
        // on its new neighbour — one capacity-preserving memset plus a
        // reinsertion per survivor beats per-node backward-shift
        // deletion, whose cost is a hash and a probe-chain walk per
        // removal. The survivors are collected in a second scan only on
        // this path, so the common small-move swap pays nothing extra.
        let table_cap = self.unique[xv as usize].capacity();
        if moved.len() >= 32 && moved.len() * 4 >= table_cap {
            let mut kept = std::mem::take(&mut ctx.kept);
            kept.clear();
            kept.extend(
                self.unique[xv as usize]
                    .iter_refs()
                    .filter(|&r| {
                        let n = nodes[r.index()];
                        nodes[n.lo.index()].var != yv && nodes[n.hi.index()].var != yv
                    })
                    .map(|r| r.0),
            );
            self.unique[xv as usize].rebuild(&self.nodes, &kept);
            ctx.kept = kept;
        } else {
            for &r in &moved {
                let n = self.nodes[r.index()];
                let removed = self.unique[xv as usize].remove(&self.nodes, n.lo, n.hi);
                debug_assert!(removed, "moved node was not in its unique table");
            }
        }
        self.level2var.swap(level as usize, level as usize + 1);
        self.var2level[xv as usize] = level + 1;
        self.var2level[yv as usize] = level;
        for &r in &moved {
            let n = self.nodes[r.index()];
            let (f00, f01) = if self.nodes[n.lo.index()].var == yv {
                let c = self.nodes[n.lo.index()];
                (c.lo, c.hi)
            } else {
                (n.lo, n.lo)
            };
            let (f10, f11) = if self.nodes[n.hi.index()].var == yv {
                let c = self.nodes[n.hi.index()];
                (c.lo, c.hi)
            } else {
                (n.hi, n.hi)
            };
            // Build the new cofactors first, then release the old ones, so
            // shared grandchildren never transiently die.
            let new_lo = self.reorder_mk(xv, f00, f10, ctx);
            let new_hi = self.reorder_mk(xv, f01, f11, ctx);
            debug_assert_ne!(new_lo, new_hi, "swap produced a redundant node");
            self.dec_ref(n.lo, ctx);
            self.dec_ref(n.hi, ctx);
            self.nodes[r.index()] = PackedNode {
                var: yv,
                lo: new_lo,
                hi: new_hi,
                aux: 0,
            };
            // Relink the rewritten node into the lower level's table; by
            // canonicity its new key cannot collide with an existing node.
            self.unique[yv as usize].reserve(&self.nodes);
            match self.unique[yv as usize].probe(&self.nodes, new_lo, new_hi) {
                Err(pos) => self.unique[yv as usize].fill(pos, r.0),
                Ok(_) => debug_assert!(
                    false,
                    "swap collided with an existing node at the lower level"
                ),
            }
        }
        ctx.moved = moved;
        ctx.swaps += 1;
    }

    /// Right-sizes every level's slot array after the swaps settle.
    /// Swaps never shrink a table, so the levels a reordering drained
    /// would otherwise keep their peak capacity — and every *later*
    /// swap pays an O(capacity) scan of the upper level, so one
    /// compaction pass here directly cheapens the next reordering.
    fn compact_tables(&mut self) {
        for table in &mut self.unique {
            table.compact(&self.nodes);
        }
    }

    // ---- sifting ------------------------------------------------------

    /// The current block structure: groups move as one block, ungrouped
    /// variables as singletons; blocks are listed top level first.
    fn current_blocks(&self) -> Vec<Vec<u32>> {
        let mut blocks = Vec::new();
        let mut level = 0usize;
        while level < self.level2var.len() {
            let var = self.level2var[level];
            match self.var_group[var as usize] {
                Some(gid) => {
                    let members = self.groups[gid as usize].clone();
                    debug_assert_eq!(members[0], var, "group must start at its topmost member");
                    level += members.len();
                    blocks.push(members);
                }
                None => {
                    blocks.push(vec![var]);
                    level += 1;
                }
            }
        }
        blocks
    }

    /// Swaps the adjacent blocks at positions `i` and `i + 1`, one
    /// variable-level swap at a time.
    fn swap_adjacent_blocks(&mut self, blocks: &mut [Vec<u32>], i: usize, ctx: &mut ReorderCtx) {
        let a_len = blocks[i].len() as u32;
        let b_len = blocks[i + 1].len() as u32;
        let top = self.var2level[blocks[i][0] as usize];
        // Bubble each variable of the lower block up past the upper block.
        for k in 0..b_len {
            for l in (top + k..top + k + a_len).rev() {
                self.swap_levels(l, ctx);
            }
        }
        blocks.swap(i, i + 1);
    }

    /// One sifting pass: every block, largest live level first, is moved
    /// through the whole order and parked where the live size was minimal.
    fn sift_all(&mut self, ctx: &mut ReorderCtx) -> usize {
        let initial = self.current_blocks();
        if initial.len() <= 1 {
            return 0;
        }
        // Sift big levels first: they have the most to gain.
        let mut order: Vec<u32> = initial.iter().map(|b| b[0]).collect();
        order.sort_by_key(|&top| {
            let block = &initial[initial.iter().position(|b| b[0] == top).unwrap()];
            std::cmp::Reverse(
                block
                    .iter()
                    .map(|&v| self.unique[v as usize].len())
                    .sum::<usize>(),
            )
        });
        let max_growth = self.reorder.max_growth.max(1.0);
        for top_var in order {
            let mut blocks = self.current_blocks();
            let mut pos = blocks
                .iter()
                .position(|b| b[0] == top_var)
                .expect("block still present");
            let mut best = self.live_size();
            let mut best_pos = pos;
            // Down to the bottom…
            while pos + 1 < blocks.len() {
                self.swap_adjacent_blocks(&mut blocks, pos, ctx);
                pos += 1;
                let t = self.live_size();
                if t < best {
                    best = t;
                    best_pos = pos;
                }
                if t as f64 > best as f64 * max_growth {
                    break;
                }
            }
            // …then up to the top…
            while pos > 0 {
                self.swap_adjacent_blocks(&mut blocks, pos - 1, ctx);
                pos -= 1;
                let t = self.live_size();
                if t < best {
                    best = t;
                    best_pos = pos;
                }
                if t as f64 > best as f64 * max_growth && pos > best_pos {
                    break;
                }
            }
            // …and back to the best position seen.
            while pos < best_pos {
                self.swap_adjacent_blocks(&mut blocks, pos, ctx);
                pos += 1;
            }
            while pos > best_pos {
                self.swap_adjacent_blocks(&mut blocks, pos - 1, ctx);
                pos -= 1;
            }
        }
        initial.len()
    }

    // ---- debug invariants ---------------------------------------------

    /// Exhaustive post-reorder consistency check (debug builds only).
    fn check_reorder_invariants(&self, ctx: &ReorderCtx) -> bool {
        // level maps are inverse bijections
        for (var, &lvl) in self.var2level.iter().enumerate() {
            assert_eq!(self.level2var[lvl as usize] as usize, var);
        }
        // groups are adjacent and in order
        for group in &self.groups {
            for w in group.windows(2) {
                assert_eq!(
                    self.var2level[w[1] as usize],
                    self.var2level[w[0] as usize] + 1,
                    "reorder separated a variable group"
                );
            }
        }
        // unique tables agree with node labels, respect the order, find
        // their own entries, and together with the free list they
        // partition the slots
        let mut tabled = 0usize;
        for (var, table) in self.unique.iter().enumerate() {
            for r in table.iter_refs() {
                let n = self.nodes[r.index()];
                assert_eq!(n.var as usize, var);
                assert_eq!(
                    table.probe(&self.nodes, n.lo, n.hi),
                    Ok(r),
                    "tabled node is not findable under its own key"
                );
                assert!(self.var2level[var] < self.level(n.lo));
                assert!(self.var2level[var] < self.level(n.hi));
                tabled += 1;
            }
        }
        assert_eq!(
            tabled,
            self.live_nodes() - 2,
            "unique tables and free list must partition the slots"
        );
        // every internal edge is reflected in the refcounts
        for slot in 2..self.nodes.len() as u32 {
            let n = self.nodes[slot as usize];
            if n.var == FREE_VAR {
                continue;
            }
            for child in [n.lo, n.hi] {
                if !child.is_const() {
                    assert!(
                        ctx.rc[child.index()] > 0,
                        "live node has an uncounted child"
                    );
                }
            }
        }
        true
    }

    /// Applies an explicit variable order (levels top to bottom) by
    /// swapping adjacent levels; mainly useful for tests and experiments.
    /// Empty `roots` (the public path) pins every allocated node so every
    /// handle stays valid; non-empty `roots` (in-crate tests) collect
    /// everything unreachable from them and the root table first.
    /// Grouped variables must appear contiguously in `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all variables, or if it
    /// tears a declared group apart or reverses a group's internal order.
    pub fn set_order(&mut self, roots: &[Ref], order: &[VarId]) {
        assert_eq!(
            order.len(),
            self.num_vars(),
            "order must cover all variables"
        );
        let mut seen = vec![false; self.num_vars()];
        for &v in order {
            assert!(!seen[v.index()], "duplicate variable in order");
            seen[v.index()] = true;
        }
        // Groups must appear contiguously *and* in their declared internal
        // order — `groups[gid]` stays sorted by level, and block movement
        // relies on that invariant in release builds too.
        let mut position = vec![0usize; self.num_vars()];
        for (pos, &v) in order.iter().enumerate() {
            position[v.index()] = pos;
        }
        for group in &self.groups {
            for w in group.windows(2) {
                assert_eq!(
                    position[w[1] as usize],
                    position[w[0] as usize] + 1,
                    "order must keep reorder group {:?} contiguous and in declared order",
                    group
                );
            }
        }
        self.clear_caches();
        let mut ctx = if roots.is_empty() {
            // Pin-all: applying a permutation needs no size metric, so
            // every existing handle can be kept valid.
            self.reorder_ctx(&[])
        } else {
            self.rooted_ctx(roots)
        };
        // Selection sort by adjacent swaps: place each target level in turn.
        for (target, &var) in order.iter().enumerate() {
            let mut lvl = self.var2level[var.index()] as usize;
            while lvl > target {
                self.swap_levels(lvl as u32 - 1, &mut ctx);
                lvl -= 1;
            }
        }
        debug_assert!(self.check_reorder_invariants(&ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the classic worst-case-order function
    /// `(x0 ∧ x1) ∨ (x2 ∧ x3) ∨ (x4 ∧ x5)` with the pairs split across the
    /// order: `x0 x2 x4 x1 x3 x5`.
    fn split_pairs(bdd: &mut Inner) -> (Vec<VarId>, Ref) {
        let vars = bdd.new_vars(6);
        // Interleave the order badly: evens first, odds after.
        let bad: Vec<VarId> = [0, 2, 4, 1, 3, 5].iter().map(|&i| vars[i]).collect();
        bdd.set_order(&[], &bad);
        let mut f = Ref::FALSE;
        for pair in vars.chunks(2) {
            let a = bdd.var(pair[0]);
            let b = bdd.var(pair[1]);
            let c = bdd.and(a, b);
            f = bdd.or(f, c);
        }
        (vars, f)
    }

    #[test]
    fn swap_preserves_denotation_and_refs() {
        let mut bdd = Inner::new();
        let (vars, f) = split_pairs(&mut bdd);
        let before: Vec<bool> = (0..64u32)
            .map(|bits| bdd.eval(f, &|v| bits >> v.index() & 1 == 1))
            .collect();
        let mut ctx = bdd.reorder_ctx(&[f]);
        for level in [0, 2, 4, 1, 3, 0] {
            bdd.swap_levels(level, &mut ctx);
            let after: Vec<bool> = (0..64u32)
                .map(|bits| bdd.eval(f, &|v| bits >> v.index() & 1 == 1))
                .collect();
            assert_eq!(before, after, "swap at level {level} changed the function");
        }
        let _ = vars;
    }

    #[test]
    fn sifting_finds_the_linear_order() {
        let mut bdd = Inner::new();
        let (_, f) = split_pairs(&mut bdd);
        let before = bdd.node_count(f);
        let stats = bdd.reduce_heap(&[f]);
        let after = bdd.node_count(f);
        assert_eq!(stats.before, before);
        assert_eq!(stats.after, after);
        // The pairs-split order needs ~2^(n/2) nodes; the sifted order is
        // linear (2 nodes per conjunction pair plus sharing).
        assert!(
            after < before,
            "sifting failed to shrink: {before} -> {after}"
        );
        assert_eq!(after, 6, "optimal order for 3 disjoint pairs is linear");
    }

    #[test]
    fn reduce_heap_respects_off_mode() {
        let mut bdd = Inner::new();
        let (_, f) = split_pairs(&mut bdd);
        bdd.set_reorder_config(ReorderConfig {
            mode: ReorderMode::Off,
            ..Default::default()
        });
        let order_before = bdd.current_order();
        let stats = bdd.reduce_heap(&[f]);
        assert_eq!(stats, ReorderStats::default());
        assert_eq!(bdd.current_order(), order_before);
    }

    #[test]
    fn groups_stay_adjacent_through_sifting() {
        let mut bdd = Inner::new();
        let vars = bdd.new_vars(8);
        for pair in vars.chunks(2) {
            bdd.group_vars(pair);
        }
        // A function whose optimal order conflicts with the declared
        // grouping, so sifting has real work to do.
        let mut f = Ref::FALSE;
        for i in 0..4 {
            let a = bdd.var(vars[i]);
            let b = bdd.var(vars[7 - i]);
            let c = bdd.and(a, b);
            f = bdd.or(f, c);
        }
        bdd.reduce_heap(&[f]);
        for pair in vars.chunks(2) {
            assert_eq!(
                bdd.level_of(pair[1]),
                bdd.level_of(pair[0]) + 1,
                "group {pair:?} was separated"
            );
        }
    }

    #[test]
    fn auto_trigger_fires_and_rearms() {
        let mut bdd = Inner::new();
        bdd.set_reorder_config(ReorderConfig {
            mode: ReorderMode::Auto,
            auto_threshold: 8,
            ..Default::default()
        });
        let (_, f) = split_pairs(&mut bdd);
        let stats = bdd.maybe_reduce_heap(&[f]).expect("threshold crossed");
        assert!(stats.after <= stats.before);
        // Far below the re-armed threshold now: no second fire.
        assert!(bdd.maybe_reduce_heap(&[f]).is_none());
    }

    #[test]
    #[should_panic(expected = "contiguous and in declared order")]
    fn set_order_rejects_reversed_group() {
        let mut bdd = Inner::new();
        let vars = bdd.new_vars(4);
        bdd.group_vars(&[vars[0], vars[1]]);
        // Contiguous but internally reversed: must be rejected, otherwise
        // `groups` and the level maps fall out of sync.
        let order = vec![vars[2], vars[1], vars[0], vars[3]];
        bdd.set_order(&[], &order);
    }

    #[test]
    fn set_order_applies_permutation() {
        let mut bdd = Inner::new();
        let vars = bdd.new_vars(4);
        let f = {
            let a = bdd.var(vars[0]);
            let b = bdd.var(vars[3]);
            bdd.and(a, b)
        };
        let order: Vec<VarId> = [3, 1, 0, 2].iter().map(|&i| vars[i]).collect();
        bdd.set_order(&[f], &order);
        assert_eq!(bdd.current_order(), order);
        assert!(bdd.eval(f, &|v| v == vars[0] || v == vars[3]));
        assert!(!bdd.eval(f, &|v| v == vars[0]));
    }
}
