//! Deck shards: the pool's unit of isolation, scheduling and stealing.
//!
//! A **shard** is a cone-disjoint group of one deck's coverage signals
//! (or the whole deck, for verification-only decks): the signals whose
//! cones of influence overlap, so they profit from sharing one compiled
//! machine and one reachability fixpoint. Each shard is executed on a
//! fresh private [`covest_bdd::BddManager`]: compile the shard's module
//! once (the union-cone reduction when [`crate::ParConfig::coi`] is on),
//! run reachability once, then multiplex the shard's signals on that
//! machine **in declaration order**. The shard's results are therefore a
//! pure function of (deck source, config) — which worker runs it, and
//! when, cannot reach a single report byte.
//!
//! Scheduling: shards are sorted largest-first by their static cone
//! weights and dealt round-robin onto per-worker deques. A worker drains
//! its own deque front-first; an idle worker **steals whole shards**
//! (never individual signals) from the fronts of its peers' deques.
//! Stealing moves a shard between threads unexecuted — its private
//! manager does not exist yet — so determinism survives by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_core::{CoverageEstimator, CoverageOptions, PropertyVerdict, ReportRow};
use covest_mc::ModelChecker;
use covest_smv::Module;
use covest_telemetry::chrome::TraceSink;
use covest_telemetry::{self as telemetry, memory, progress, Clock, Stopwatch, Telemetry};

use crate::plan::{ParConfig, Task, TaskKind, WorkPlan};
use crate::pool::{ShardProfile, SignalOutcome, TaskPayload};

/// One schedulable unit: a cone-disjoint slice of one deck.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// Index of the owning deck in the plan.
    pub deck: usize,
    /// The module this shard compiles on its private manager: the
    /// union-cone reduction of the member signals (COI on), or the full
    /// parsed deck (COI off / verification-only).
    pub module: Arc<Module>,
    /// Global task indices of the member signals, in declaration order —
    /// also the execution order on the shard's manager.
    pub tasks: Vec<usize>,
    /// Scheduling weight: the sum of the member cone widths in state
    /// bits; `usize::MAX` for verification-only shards (whole machine,
    /// dispatched first). Largest-first dispatch keeps the slowest shard
    /// off the tail of an otherwise drained queue.
    pub weight: usize,
    /// Worthiness estimate in state bits (verification-only shards count
    /// the full deck width instead of `usize::MAX`); summed across a
    /// fleet to decide pool-vs-sequential routing.
    pub est_bits: usize,
}

/// Per-task outcome within a shard: the global task index plus the
/// payload or the task's error message.
pub(crate) type ShardEntries = Vec<(usize, Result<TaskPayload, String>)>;

/// What executing one shard yields: per-task entries (or one shard-level
/// compile error, reported as a plan-class failure of the deck) plus the
/// optional profile.
pub(crate) type ShardResult = (Result<ShardEntries, String>, Option<ShardProfile>);

/// Installs the telemetry memory sampler over `bdd` on the current
/// thread. The closure holds its own manager handle (an `Rc` clone), so
/// the caller **must** [`memory::clear_mem_sampler`] before the shard
/// ends or the sampler would keep the whole arena alive.
pub(crate) fn install_mem_sampler(bdd: &BddManager) {
    let gauges = bdd.clone();
    memory::set_mem_sampler(move || {
        let (live, bytes, peak) = gauges.mem_gauges();
        memory::MemSample {
            live_nodes: live as u64,
            arena_bytes: bytes as u64,
            peak_live_nodes: peak,
        }
    });
}

/// Executes one shard on a fresh private manager. Pure in (deck source,
/// config): compile once, reach once, then the member signals in
/// declaration order. `queue_wait`, `stolen` and `worker` are
/// scheduling observability only and reach nothing but the (non-parity)
/// profile. `clock` is the batch-shared timeline every profile span is
/// stamped on.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shard(
    deck_name: &str,
    shard: &Shard,
    tasks: &[Task],
    config: &ParConfig,
    queue_wait: Duration,
    stolen: bool,
    worker: usize,
    clock: &Arc<dyn Clock>,
) -> ShardResult {
    if config.profile {
        telemetry::install(Telemetry::with_clock(clock.clone()));
    }
    let bdd = BddManager::new();
    if config.profile {
        install_mem_sampler(&bdd);
    }
    if config.progress {
        progress::install_progress(progress::Progress::stderr(
            clock.clone(),
            format!("shard:{deck_name}"),
        ));
    }
    let result = run_shard_phases(&bdd, deck_name, shard, tasks, config);
    memory::clear_mem_sampler();
    progress::uninstall_progress();
    let recorder = telemetry::uninstall();
    match result {
        Ok((entries, compile, reach, solve)) => {
            let profile = recorder.map(|rec| {
                let (spans, mut counters) = rec.into_parts();
                for (name, value) in bdd.stats().pairs() {
                    counters.add(name, value);
                }
                ShardProfile {
                    deck: deck_name.to_owned(),
                    signals: shard
                        .tasks
                        .iter()
                        .filter_map(|&ti| match &tasks[ti].kind {
                            TaskKind::Coverage { signal, .. } => Some(signal.clone()),
                            TaskKind::VerifyOnly => None,
                        })
                        .collect(),
                    queue_wait,
                    compile,
                    reach,
                    solve,
                    stolen,
                    worker,
                    peak_by_phase: memory::peak_by_phase(&spans),
                    counters,
                    spans,
                }
            });
            (Ok(entries), profile)
        }
        Err(message) => (Err(message), None),
    }
}

/// The shard body proper: compile, reach, then the member tasks —
/// returning per-task entries plus each phase's wall-clock. Split out of
/// [`run_shard`] so the recorder installed there is uninstalled on
/// *every* exit path. Stops at the first failing task: later signals of
/// the shard would be discarded anyway (the merge reports the
/// lowest-index error), and stopping keeps that choice deterministic.
fn run_shard_phases(
    bdd: &BddManager,
    deck_name: &str,
    shard: &Shard,
    tasks: &[Task],
    config: &ParConfig,
) -> Result<(ShardEntries, Duration, Duration, Duration), String> {
    let _shard_span = telemetry::span(format!("shard:{deck_name}"));
    if telemetry::is_active() {
        let signals: Vec<&str> = shard
            .tasks
            .iter()
            .filter_map(|&ti| match &tasks[ti].kind {
                TaskKind::Coverage { signal, .. } => Some(signal.as_str()),
                TaskKind::VerifyOnly => None,
            })
            .collect();
        telemetry::span_label("signals", &signals.join("+"));
    }
    bdd.set_reorder_config(ReorderConfig {
        mode: config.reorder,
        ..Default::default()
    });
    let sw = Stopwatch::start();
    let model = covest_smv::compile_module_with(bdd, &shard.module, config.image)
        .map_err(|e| e.to_string())?;
    if config.reorder == ReorderMode::Sift {
        bdd.reduce_heap();
    }
    let compile = sw.elapsed();

    // One reachability fixpoint for the whole shard: the estimator's
    // machine-wide prefix (reach + care install) is signal-independent,
    // so every member signal reuses it. Verification-only shards manage
    // their care set inside the solve phase instead (it is conditional
    // on the simplify mode there, mirroring the sequential path).
    let estimator = CoverageEstimator::new(&model.fsm);
    let has_coverage = shard
        .tasks
        .iter()
        .any(|&ti| matches!(tasks[ti].kind, TaskKind::Coverage { .. }));
    let sw = Stopwatch::start();
    let reach = has_coverage.then(|| estimator.prepare());
    let reach_time = sw.elapsed();

    let sw = Stopwatch::start();
    let mut entries = Vec::with_capacity(shard.tasks.len());
    for &ti in &shard.tasks {
        let outcome: Result<TaskPayload, String> = match &tasks[ti].kind {
            TaskKind::Coverage { signal, cone } => (|| {
                let options = CoverageOptions {
                    fairness: model.fairness.clone(),
                    cone: Some(cone.as_ref().clone()),
                    ..Default::default()
                };
                let analysis = estimator
                    .analyze_prepared(
                        reach.as_ref().expect("coverage shard prepared"),
                        signal,
                        &model.specs,
                        &options,
                    )
                    .map_err(|e| e.to_string())?;
                let universe = estimator.universe(options.cone.as_deref());
                let sample = estimator.sample_states_over(
                    &analysis.uncovered(),
                    &universe,
                    config.uncovered_limit,
                );
                let uncovered = analysis
                    .uncovered()
                    .export_bdd()
                    .map_err(|e| e.to_string())?;
                let row =
                    ReportRow::from_analysis(deck_name, &analysis).with_uncovered_sample(sample);
                Ok(TaskPayload::Coverage(Box::new(SignalOutcome {
                    deck: deck_name.to_owned(),
                    signal: signal.clone(),
                    row,
                    uncovered,
                })))
            })(),
            TaskKind::VerifyOnly => (|| {
                let mut mc = ModelChecker::new(&model.fsm);
                for fair in &model.fairness {
                    mc.add_fairness(fair).map_err(|e| e.to_string())?;
                }
                if config.image.simplify != covest_smv::SimplifyConfig::Off {
                    mc.set_care(model.fsm.install_reachable_care());
                }
                let mut verdicts = Vec::with_capacity(model.specs.len());
                for spec in &model.specs {
                    let verdict = mc.check(&spec.clone().into()).map_err(|e| e.to_string())?;
                    verdicts.push(PropertyVerdict {
                        formula: spec.to_string(),
                        holds: verdict.holds(),
                        vacuous: false,
                    });
                }
                Ok(TaskPayload::Verdicts(verdicts))
            })(),
        };
        let failed = outcome.is_err();
        entries.push((ti, outcome));
        if failed {
            break;
        }
    }
    let solve = sw.elapsed();
    Ok((entries, compile, reach_time, solve))
}

/// Runs every shard of a plan on `config.jobs` workers with whole-shard
/// stealing, returning per-shard results (indexed by shard), the steal
/// count, and the worker count actually spawned.
///
/// Shards are sorted largest-first by weight (stable by shard index) and
/// dealt round-robin onto one deque per worker; each deque entry carries
/// its enqueue timestamp, so a shard's queue wait is exactly
/// (dequeue − enqueue) — bounded by the pool's wall-clock. A worker pops
/// its own deque front-first and, once empty, scans its peers' deques
/// (cyclically from its right neighbor) and steals their front — the
/// largest shard still queued there, which moves the most work per
/// steal. All work is enqueued before the workers start, so a full
/// unsuccessful scan means the pool is drained and the worker exits.
///
/// When `sink` is given, each finished shard's span forest is streamed
/// out of the result loop as it arrives — one track per **worker**
/// (tid = worker index + 1; tid 0 is reserved for the driver), batches
/// in per-worker execution order — and dropped from the profile, so
/// trace memory stays bounded by one shard whatever the batch size.
/// The shard root span is tagged with its `stolen` flag at stream time
/// (a scheduling fact, so it must stay out of the parity-checked
/// in-memory profile).
pub(crate) fn run_pool(
    plan: &WorkPlan,
    config: &ParConfig,
    mut sink: Option<&mut dyn TraceSink>,
) -> (Vec<Option<ShardResult>>, usize, usize) {
    let workers = plan.shards.len().min(config.effective_jobs()).max(1);
    let mut order: Vec<usize> = (0..plan.shards.len()).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(plan.shards[s].weight));
    let clock = config.batch_clock();
    let deques: Vec<Mutex<VecDeque<(usize, Duration)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (rank, &s) in order.iter().enumerate() {
        deques[rank % workers]
            .lock()
            .expect("deque lock")
            .push_back((s, clock.now()));
    }
    let steals = AtomicUsize::new(0);
    let mut slots: Vec<Option<ShardResult>> = Vec::new();
    slots.resize_with(plan.shards.len(), || None);

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, ShardResult)>();
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let steals = &steals;
            let clock = &clock;
            scope.spawn(move || loop {
                let mut picked = deques[w]
                    .lock()
                    .expect("deque lock")
                    .pop_front()
                    .map(|entry| (entry, false));
                if picked.is_none() {
                    for offset in 1..workers {
                        let victim = (w + offset) % workers;
                        let entry = deques[victim].lock().expect("deque lock").pop_front();
                        if let Some(entry) = entry {
                            steals.fetch_add(1, Ordering::Relaxed);
                            picked = Some((entry, true));
                            break;
                        }
                    }
                }
                let Some(((s, enqueued), stolen)) = picked else {
                    break;
                };
                let queue_wait = clock.now().saturating_sub(enqueued);
                let shard = &plan.shards[s];
                let result = run_shard(
                    &plan.decks[shard.deck].name,
                    shard,
                    &plan.tasks,
                    config,
                    queue_wait,
                    stolen,
                    w,
                    clock,
                );
                if tx.send((s, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (s, mut result) in rx {
            if let Some(sink) = sink.as_deref_mut() {
                if let Some(profile) = result.1.as_mut() {
                    if !profile.spans.is_empty() {
                        if let Some(root) = profile.spans.first_mut() {
                            root.fields
                                .push(("stolen".to_owned(), u64::from(profile.stolen)));
                        }
                        sink.write_track(
                            profile.worker as u64 + 1,
                            &format!("worker {}", profile.worker),
                            &profile.spans,
                        );
                        profile.spans = Vec::new();
                    }
                }
            }
            slots[s] = Some(result);
        }
    });

    (slots, steals.into_inner(), workers)
}
