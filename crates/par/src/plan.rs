//! Work planning: decompose decks × observed signals into per-signal
//! tasks and cone-disjoint **shards**, per the paper's workflow.
//!
//! The DAC'99 estimator runs one analysis *per observed signal*
//! (Table 2 has one row per signal), and once the model is compiled the
//! analyses are independent. Planning here is **purely static** — parse,
//! dependency graph, cones of influence — and builds no BDDs: all
//! compile and reachability work happens inside the shards, where it
//! runs in parallel, instead of serially on the planning thread. The
//! planner emits one task per `(deck, signal)` pair — in declaration
//! order, which is also the order results are reassembled in, whatever
//! order workers finish — and groups each deck's signals into
//! cone-disjoint shards (see [`crate::shard`]): signals whose cones
//! overlap share one compiled machine and one reachability fixpoint.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use covest_analyze::{cone_bit_names, reduce_module_multi, task_cone, DepGraph};
use covest_smv::{decl_bit_names, ImageConfig};

use crate::pool::ParError;
use crate::shard::Shard;

/// One deck in a batch: a name (shown in reports), the SMV source text,
/// and an optional observed-signal override.
#[derive(Debug, Clone)]
pub struct DeckJob {
    /// Display name (typically the deck's path).
    pub name: String,
    /// SMV source text.
    pub source: String,
    /// Signals to analyze; empty means the deck's `OBSERVED` list.
    pub observed: Vec<String>,
}

impl DeckJob {
    /// A deck job analyzing the deck's own `OBSERVED` signals.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        DeckJob {
            name: name.into(),
            source: source.into(),
            observed: Vec::new(),
        }
    }
}

/// Configuration for planning and running a parallel coverage batch.
#[derive(Clone)]
pub struct ParConfig {
    /// Thread budget for the worker pool (`0` = one worker per available
    /// core). The budget is shared by *all* shards of a batch — many
    /// decks × many signals drain through one set of deques.
    pub jobs: usize,
    /// Image configuration for every compile (method, cluster threshold,
    /// simplification mode).
    pub image: ImageConfig,
    /// Dynamic-reordering mode for every manager. [`ReorderMode::Sift`]
    /// mirrors the CLI default: one sifting pass right after compile.
    ///
    /// [`ReorderMode::Sift`]: covest_bdd::ReorderMode::Sift
    pub reorder: covest_bdd::ReorderMode,
    /// How many uncovered states to sample per signal (the canonical
    /// declaration-order sample; see
    /// [`covest_core::CoverageEstimator::uncovered_states`]).
    pub uncovered_limit: usize,
    /// Collect a per-shard [`crate::ShardProfile`] — phase durations, a
    /// span log, and the shard's deterministic engine counters. Off by
    /// default; the counters are a pure function of (deck source,
    /// config), so they are byte-identical across `jobs` values, while
    /// the durations (and the stolen flag) are wall-clock scheduling
    /// facts and excluded from parity. Profiling also forces the pool:
    /// [`crate::run_batch`] never routes a profiled fleet to the
    /// sequential baseline, which collects no profiles.
    pub profile: bool,
    /// Cone-of-influence reduction (`true`, the default): each shard
    /// compiles the statically pruned union-cone deck of its member
    /// signals on its private manager instead of the full source. With
    /// `false` the shard compiles the full deck and the estimator
    /// projects onto each signal's cone instead. The two modes produce
    /// bit-identical reports (percentages, counts, verdicts, uncovered
    /// listings) — the coverage universe is the per-signal cone either
    /// way; only manager size and wall-clock differ. See DESIGN.md
    /// "Static deck analysis & cone-of-influence".
    pub coi: bool,
    /// Emit the throttled stderr progress heartbeat (and arm the
    /// fixpoint watchdog) on every shard and on the sequential
    /// baseline. Pure stderr observability — never reaches a report
    /// byte. See [`covest_telemetry::progress`].
    pub progress: bool,
    /// The clock stamping profile spans, queue waits, and the progress
    /// throttle. `None` (the default) means a fresh
    /// [`covest_telemetry::WallClock`] per batch; tests inject a
    /// [`covest_telemetry::ManualClock`] to freeze every timestamp and
    /// make whole span forests byte-comparable across runs.
    pub clock: Option<Arc<dyn covest_telemetry::Clock>>,
}

impl std::fmt::Debug for ParConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParConfig")
            .field("jobs", &self.jobs)
            .field("image", &self.image)
            .field("reorder", &self.reorder)
            .field("uncovered_limit", &self.uncovered_limit)
            .field("profile", &self.profile)
            .field("coi", &self.coi)
            .field("progress", &self.progress)
            .field("clock", &self.clock.as_ref().map(|_| "injected"))
            .finish()
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            jobs: 1,
            image: ImageConfig::default(),
            reorder: covest_bdd::ReorderMode::Sift,
            uncovered_limit: 10,
            profile: false,
            coi: true,
            progress: false,
            clock: None,
        }
    }
}

impl ParConfig {
    /// The effective worker count: `jobs`, or the number of available
    /// cores when `jobs == 0`, never less than one.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// The clock one batch runs under: the injected one, or a fresh
    /// [`covest_telemetry::WallClock`] with its epoch at the call. One
    /// shared clock per batch keeps every worker's span timestamps on a
    /// single timeline, which is what makes merged trace tracks line up.
    pub(crate) fn batch_clock(&self) -> Arc<dyn covest_telemetry::Clock> {
        self.clock
            .clone()
            .unwrap_or_else(|| Arc::new(covest_telemetry::WallClock::new()))
    }
}

/// A statically planned deck: name, suite size, and how long the (pure
/// parse/cone) planning took. Carries no sources and no BDD dumps — the
/// shards own the modules they compile.
#[derive(Debug, Clone)]
pub(crate) struct PlannedDeck {
    pub name: String,
    pub num_properties: usize,
    /// Wall-clock the planner spent on this deck (parse + cones + shard
    /// construction). Timing only — never parity-checked.
    pub plan_time: Duration,
}

/// What one task asks its shard to do.
#[derive(Debug, Clone)]
pub(crate) enum TaskKind {
    /// Verify the suite and estimate coverage for one observed signal.
    Coverage {
        signal: String,
        /// The signal's cone state-bit names in declaration order — the
        /// task's counting/sampling universe and its static size
        /// estimate.
        cone: Arc<Vec<String>>,
    },
    /// Verify the suite only (decks with no observed signals).
    VerifyOnly,
}

impl TaskKind {
    /// Static size estimate in state bits: the cone width for coverage
    /// tasks; `usize::MAX` for verify-only tasks (whole machine).
    pub(crate) fn size_hint(&self) -> usize {
        match self {
            TaskKind::Coverage { cone, .. } => cone.len(),
            TaskKind::VerifyOnly => usize::MAX,
        }
    }
}

/// One unit of report work: a deck index plus what to do with it.
#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub deck: usize,
    pub kind: TaskKind,
}

/// Plans a single deck, statically: parse (validating early, on the
/// calling thread), compute per-signal cones, and group the signals into
/// cone-disjoint shards — task indices local to the deck; the caller
/// offsets them into the global task list.
fn plan_deck(
    job: &DeckJob,
    config: &ParConfig,
) -> Result<(PlannedDeck, Vec<TaskKind>, Vec<Shard>), ParError> {
    let plan_err = |message: String| ParError::Plan {
        deck: job.name.clone(),
        message,
    };
    let sw = covest_telemetry::Stopwatch::start();
    let module = covest_smv::parse_module(&job.source).map_err(|e| plan_err(e.to_string()))?;
    let signals: Vec<String> = if job.observed.is_empty() {
        module.observed.iter().map(|o| o.name.clone()).collect()
    } else {
        job.observed.clone()
    };
    let num_properties = module.specs.len();

    let (kinds, shards) = if signals.is_empty() {
        // Verification-only deck: one shard over the full machine.
        let est_bits = module.vars.iter().flat_map(decl_bit_names).count();
        let shard = Shard {
            deck: 0,
            module: Arc::new(module),
            tasks: vec![0],
            weight: usize::MAX,
            est_bits,
        };
        (vec![TaskKind::VerifyOnly], vec![shard])
    } else {
        let graph = DepGraph::new(&module);
        let mut cones: Vec<BTreeSet<String>> = Vec::with_capacity(signals.len());
        let mut kinds = Vec::with_capacity(signals.len());
        for signal in &signals {
            let cone = task_cone(&module, &graph, signal).map_err(&plan_err)?;
            kinds.push(TaskKind::Coverage {
                signal: signal.clone(),
                cone: Arc::new(cone_bit_names(&module, &cone)),
            });
            cones.push(cone);
        }

        // Union-find over the signals: overlapping cones share a shard.
        let mut root: Vec<usize> = (0..signals.len()).collect();
        fn find(root: &mut [usize], mut i: usize) -> usize {
            while root[i] != i {
                root[i] = root[root[i]];
                i = root[i];
            }
            i
        }
        for i in 0..signals.len() {
            for j in 0..i {
                if !cones[i].is_disjoint(&cones[j]) {
                    let (a, b) = (find(&mut root, i), find(&mut root, j));
                    // Union toward the lower index, so a group is named
                    // by its first signal in declaration order.
                    let (lo, hi) = (a.min(b), a.max(b));
                    root[hi] = lo;
                }
            }
        }
        // Groups in first-signal declaration order; members likewise.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_of = vec![usize::MAX; signals.len()];
        for i in 0..signals.len() {
            let r = find(&mut root, i);
            if group_of[r] == usize::MAX {
                group_of[r] = groups.len();
                groups.push(Vec::new());
            }
            groups[group_of[r]].push(i);
        }

        let full = Arc::new(module);
        let shards = groups
            .into_iter()
            .map(|members| {
                let weight: usize = members
                    .iter()
                    .map(|&i| kinds[i].size_hint())
                    .fold(0usize, usize::saturating_add);
                let module = if config.coi {
                    let mut union: BTreeSet<String> = BTreeSet::new();
                    for &i in &members {
                        union.extend(cones[i].iter().cloned());
                    }
                    // Deduped for the reduced module's OBSERVED list; the
                    // shard's task list keeps duplicates (two identical
                    // rows, as the per-task pool produced).
                    let mut observed: Vec<String> = Vec::new();
                    for &i in &members {
                        if !observed.contains(&signals[i]) {
                            observed.push(signals[i].clone());
                        }
                    }
                    Arc::new(reduce_module_multi(&full, &union, &observed))
                } else {
                    Arc::clone(&full)
                };
                Shard {
                    deck: 0,
                    module,
                    tasks: members,
                    weight,
                    est_bits: weight,
                }
            })
            .collect();
        (kinds, shards)
    };

    Ok((
        PlannedDeck {
            name: job.name.clone(),
            num_properties,
            plan_time: sw.elapsed(),
        },
        kinds,
        shards,
    ))
}

/// The decomposition of a batch into per-signal tasks and cone-disjoint
/// shards.
///
/// Built by [`WorkPlan::plan`]; executed by [`WorkPlan::run`]. The plan
/// is immutable, `Send + Sync`, and carries no BDD handles — only parsed
/// modules, names and cone bit lists — so the worker pool can share it
/// by reference across threads. Planning is static (no compiles, no
/// reachability); all BDD work happens inside the shards, in parallel.
#[derive(Debug)]
pub struct WorkPlan {
    pub(crate) decks: Vec<PlannedDeck>,
    pub(crate) tasks: Vec<Task>,
    pub(crate) shards: Vec<Shard>,
}

impl WorkPlan {
    /// Parses and statically validates every deck (on the calling
    /// thread), computes each signal's cone of influence, and lays out
    /// one task per `(deck, observed signal)` — or a verification-only
    /// task for decks without signals — grouped into cone-disjoint
    /// shards.
    ///
    /// # Errors
    ///
    /// [`ParError::Plan`] if a deck fails to parse or a property fails
    /// to parse. (Semantic compile failures surface when the shard
    /// compiles, also as [`ParError::Plan`].)
    pub fn plan(jobs: &[DeckJob], config: &ParConfig) -> Result<WorkPlan, ParError> {
        let mut decks = Vec::with_capacity(jobs.len());
        let mut tasks = Vec::new();
        let mut shards: Vec<Shard> = Vec::new();
        for (deck_idx, job) in jobs.iter().enumerate() {
            let (deck, kinds, deck_shards) = plan_deck(job, config)?;
            let base = tasks.len();
            tasks.extend(kinds.into_iter().map(|kind| Task {
                deck: deck_idx,
                kind,
            }));
            shards.extend(deck_shards.into_iter().map(|mut s| {
                s.deck = deck_idx;
                for t in &mut s.tasks {
                    *t += base;
                }
                s
            }));
            decks.push(deck);
        }
        Ok(WorkPlan {
            decks,
            tasks,
            shards,
        })
    }

    /// Number of decks in the plan.
    pub fn num_decks(&self) -> usize {
        self.decks.len()
    }

    /// Total number of report tasks (coverage + verification-only).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of shards — the pool's schedulable (and stealable) units.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Static per-task size estimates, in task order: the cone width in
    /// state bits for coverage tasks, `usize::MAX` for verify-only tasks
    /// (whole machine). A shard's scheduling weight is the sum over its
    /// member tasks; the pool dispatches shards largest-first on those
    /// weights.
    pub fn task_size_estimates(&self) -> Vec<usize> {
        self.tasks.iter().map(|t| t.kind.size_hint()).collect()
    }

    /// Number of per-signal coverage tasks.
    pub fn num_coverage_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::Coverage { .. }))
            .count()
    }

    /// The fleet's total worthiness estimate in state bits — the input
    /// to [`crate::run_batch`]'s pool-vs-sequential routing heuristic.
    pub(crate) fn fleet_est_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.est_bits)
            .fold(0usize, usize::saturating_add)
    }
}
