//! Work planning: decompose decks × observed signals into independent
//! per-signal coverage tasks, per the paper's workflow.
//!
//! The DAC'99 estimator runs one analysis *per observed signal*
//! (Table 2 has one row per signal), and once the model is compiled the
//! analyses are independent. The planner makes that decomposition
//! explicit: it compiles each deck once (validating it early, on the
//! calling thread), computes the deck's reachable states, exports them
//! as a name-keyed [`covest_bdd::BddDump`], and emits one task per
//! `(deck, signal)` pair — in declaration order, which is also the
//! order results are reassembled in, whatever order workers finish.

use std::sync::Arc;

use covest_analyze::{cone_bit_names, reduce_module, task_cone, DepGraph};
use covest_bdd::{BddDump, BddManager, ReorderConfig, ReorderMode, VarId};
use covest_smv::{ImageConfig, Module};

use crate::pool::ParError;

/// One deck in a batch: a name (shown in reports), the SMV source text,
/// and an optional observed-signal override.
#[derive(Debug, Clone)]
pub struct DeckJob {
    /// Display name (typically the deck's path).
    pub name: String,
    /// SMV source text.
    pub source: String,
    /// Signals to analyze; empty means the deck's `OBSERVED` list.
    pub observed: Vec<String>,
}

impl DeckJob {
    /// A deck job analyzing the deck's own `OBSERVED` signals.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        DeckJob {
            name: name.into(),
            source: source.into(),
            observed: Vec::new(),
        }
    }
}

/// Configuration for planning and running a parallel coverage batch.
#[derive(Debug, Clone, Copy)]
pub struct ParConfig {
    /// Thread budget for the worker pool (`0` = one worker per available
    /// core). The budget is shared by *all* tasks of a batch — many decks
    /// × many signals drain through one queue.
    pub jobs: usize,
    /// Image configuration for every compile (method, cluster threshold,
    /// simplification mode) — planner and workers alike.
    pub image: ImageConfig,
    /// Dynamic-reordering mode for every manager. [`ReorderMode::Sift`]
    /// mirrors the CLI default: one sifting pass right after compile.
    pub reorder: ReorderMode,
    /// How many uncovered states to sample per signal (the canonical
    /// declaration-order sample; see
    /// [`covest_core::CoverageEstimator::uncovered_states`]).
    pub uncovered_limit: usize,
    /// Collect a per-task [`crate::TaskProfile`] — phase durations, a
    /// span log, and the task's deterministic engine counters. Off by
    /// default; the counters are a pure function of (deck source,
    /// signal, config), so they are byte-identical across `jobs` values,
    /// while the durations are wall-clock and excluded from parity.
    pub profile: bool,
    /// Cone-of-influence reduction (`true`, the default): each coverage
    /// task compiles the statically pruned cone deck on its private
    /// manager instead of the full source, and imports the
    /// cone-projected reachable set. With `false` the task compiles the
    /// full deck and the estimator projects onto the cone instead. The
    /// two modes produce bit-identical reports (percentages, counts,
    /// verdicts, uncovered listings) — the coverage universe is the cone
    /// either way; only manager size and wall-clock differ. See
    /// DESIGN.md "Static deck analysis & cone-of-influence".
    pub coi: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            jobs: 1,
            image: ImageConfig::default(),
            reorder: ReorderMode::Sift,
            uncovered_limit: 10,
            profile: false,
            coi: true,
        }
    }
}

impl ParConfig {
    /// The effective worker count: `jobs`, or the number of available
    /// cores when `jobs == 0`, never less than one.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

/// A validated, planner-compiled deck: everything a worker needs to run
/// one of its signals on a private manager. Plain `Send + Sync` data.
#[derive(Debug, Clone)]
pub(crate) struct PlannedDeck {
    pub name: String,
    pub source: String,
    pub num_properties: usize,
    /// The planner-computed reachable set, exported name-keyed so every
    /// worker imports it instead of re-running the reachability BFS.
    pub reach: BddDump,
    /// Wall-clock the planner spent on this deck (compile + reachability
    /// + export). Timing only — never parity-checked.
    pub plan_time: std::time::Duration,
}

/// The statically pruned form of one coverage task: the cone-reduced
/// module and the cone-projection of the planner's reachable set, ready
/// to compile/import on a worker's private manager.
#[derive(Debug)]
pub(crate) struct ReducedCone {
    pub module: Module,
    pub reach: BddDump,
}

/// What one queue entry asks a worker to do.
#[derive(Debug, Clone)]
pub(crate) enum TaskKind {
    /// Verify the suite and estimate coverage for one observed signal.
    Coverage {
        signal: String,
        /// The cone's state-bit names in declaration order — the task's
        /// counting/sampling universe and its static size estimate.
        cone: Arc<Vec<String>>,
        /// The pruned deck (`Some` iff [`ParConfig::coi`] was on at
        /// planning time).
        reduced: Option<Arc<ReducedCone>>,
    },
    /// Verify the suite only (decks with no observed signals).
    VerifyOnly,
}

impl TaskKind {
    /// Static size estimate in state bits: the cone width for coverage
    /// tasks; `usize::MAX` for verify-only tasks (whole machine). Large
    /// tasks are dispatched first so the slowest work does not land last
    /// on an otherwise drained queue.
    pub(crate) fn size_hint(&self) -> usize {
        match self {
            TaskKind::Coverage { cone, .. } => cone.len(),
            TaskKind::VerifyOnly => usize::MAX,
        }
    }
}

/// One unit of queue work: a deck index plus what to do with it.
#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub deck: usize,
    pub kind: TaskKind,
}

/// Plans a single deck: compile (validating early, on the calling
/// thread), compute and export the reachable states, and decide the
/// deck's task kinds — one per observed signal in declaration order, or
/// a single verification-only task when the deck observes nothing.
///
/// The planner deliberately skips the explicit startup sifting pass of
/// [`ReorderMode::Sift`]: its managers only exist to validate the deck
/// and export the (purely semantic) reachable set, and the workers sift
/// their own managers.
pub(crate) fn plan_deck(
    job: &DeckJob,
    config: &ParConfig,
) -> Result<(PlannedDeck, Vec<TaskKind>), ParError> {
    let plan_err = |message: String| ParError::Plan {
        deck: job.name.clone(),
        message,
    };
    let sw = covest_telemetry::Stopwatch::start();
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: config.reorder,
        ..Default::default()
    });
    let module = covest_smv::parse_module(&job.source).map_err(|e| plan_err(e.to_string()))?;
    let model = covest_smv::compile_module_with(&bdd, &module, config.image)
        .map_err(|e| plan_err(e.to_string()))?;
    let signals = if job.observed.is_empty() {
        model.observed.clone()
    } else {
        job.observed.clone()
    };
    let full_reach = model.fsm.reachable();
    let reach = full_reach
        .export_bdd()
        .map_err(|e| plan_err(format!("cannot export reachable set: {e}")))?;
    let kinds = if signals.is_empty() {
        vec![TaskKind::VerifyOnly]
    } else {
        // Static analysis per signal: the task's cone (its counting
        // universe and size estimate), and — with COI on — the pruned
        // deck plus the cone-projection of the reachable set the worker
        // will import instead of the full one.
        let graph = DepGraph::new(&module);
        let mut kinds = Vec::with_capacity(signals.len());
        for signal in signals {
            let cone = task_cone(&module, &graph, &signal).map_err(&plan_err)?;
            let bits = cone_bit_names(&module, &cone);
            let reduced = if config.coi {
                let keep: std::collections::HashSet<&str> =
                    bits.iter().map(String::as_str).collect();
                let outside: Vec<VarId> = model
                    .fsm
                    .state_bits()
                    .iter()
                    .filter(|b| !keep.contains(b.name.as_str()))
                    .map(|b| b.current)
                    .collect();
                let cone_reach = full_reach
                    .exists(&outside)
                    .export_bdd()
                    .map_err(|e| plan_err(format!("cannot export cone reachable set: {e}")))?;
                Some(Arc::new(ReducedCone {
                    module: reduce_module(&module, &cone, &signal),
                    reach: cone_reach,
                }))
            } else {
                None
            };
            kinds.push(TaskKind::Coverage {
                signal,
                cone: Arc::new(bits),
                reduced,
            });
        }
        kinds
    };
    Ok((
        PlannedDeck {
            name: job.name.clone(),
            source: job.source.clone(),
            num_properties: model.specs.len(),
            reach,
            plan_time: sw.elapsed(),
        },
        kinds,
    ))
}

/// The decomposition of a batch into per-signal tasks.
///
/// Built by [`WorkPlan::plan`]; executed by [`WorkPlan::run`]. The plan
/// is immutable, `Send + Sync`, and carries no BDD handles — only
/// sources, names and [`BddDump`]s — so the worker pool can share it by
/// reference across threads. ([`crate::run_batch`] skips this two-phase
/// shape and *pipelines* planning with execution; build a `WorkPlan`
/// when the same plan is run more than once.)
#[derive(Debug)]
pub struct WorkPlan {
    pub(crate) decks: Vec<PlannedDeck>,
    pub(crate) tasks: Vec<Task>,
}

impl WorkPlan {
    /// Compiles and validates every deck (on the calling thread),
    /// computes and exports each deck's reachable states, and lays out
    /// one task per `(deck, observed signal)` — or a verification-only
    /// task for decks without signals.
    ///
    /// # Errors
    ///
    /// [`ParError::Plan`] if a deck fails to compile or its reachable
    /// set cannot be exported.
    pub fn plan(jobs: &[DeckJob], config: &ParConfig) -> Result<WorkPlan, ParError> {
        let mut decks = Vec::with_capacity(jobs.len());
        let mut tasks = Vec::new();
        for (deck_idx, job) in jobs.iter().enumerate() {
            let (deck, kinds) = plan_deck(job, config)?;
            tasks.extend(kinds.into_iter().map(|kind| Task {
                deck: deck_idx,
                kind,
            }));
            decks.push(deck);
        }
        Ok(WorkPlan { decks, tasks })
    }

    /// Number of decks in the plan.
    pub fn num_decks(&self) -> usize {
        self.decks.len()
    }

    /// Total number of queue tasks (coverage + verification-only).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Static per-task size estimates, in task order: the cone width in
    /// state bits for coverage tasks, `usize::MAX` for verify-only tasks
    /// (whole machine). [`WorkPlan::run`] dispatches largest-first on
    /// these; they are also the task-size inputs the ROADMAP's
    /// work-stealing item calls for.
    pub fn task_size_estimates(&self) -> Vec<usize> {
        self.tasks.iter().map(|t| t.kind.size_hint()).collect()
    }

    /// Number of per-signal coverage tasks.
    pub fn num_coverage_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::Coverage { .. }))
            .count()
    }
}
