//! # covest-par
//!
//! The parallel coverage engine: run the DAC'99 estimator's per-signal
//! analyses **concurrently**, across one deck or a whole fleet of decks,
//! under a single thread budget — with results bit-identical to the
//! sequential estimator.
//!
//! The paper's workflow (Table 2 / Section 4) runs one coverage analysis
//! per observed signal, and each analysis is independent once the model
//! is compiled. The sequential pipeline nevertheless runs them one after
//! another inside a single [`covest_bdd::BddManager`] — which is an
//! `Rc<RefCell<…>>` handle and deliberately not `Send`, so the engine
//! cannot simply share it across threads. This crate supplies the three
//! pieces that turn signal independence into wall-clock speedup:
//!
//! - **[`WorkPlan`]** — decompose decks × observed signals into
//!   per-signal tasks and cone-disjoint **shards**. Planning is purely
//!   static (parse, dependency graph, cones of influence — no BDDs):
//!   signals whose cones overlap are grouped into one shard, which
//!   compiles one union-cone machine and runs one reachability fixpoint
//!   for all of them, instead of every signal paying its own compile.
//! - **The worker pool** ([`WorkPlan::run`]) — `jobs` OS threads, one
//!   deque each. Shards are dealt round-robin largest-first (by their
//!   static cone weights); an idle worker **steals whole shards** —
//!   never individual signals — from its peers, so every shard still
//!   executes its signals in declaration order on one fresh private
//!   manager, wherever it lands. A worthiness heuristic in
//!   [`run_batch`] routes fleets too small to amortize the pool
//!   straight to [`run_sequential`].
//! - **Deterministic merge** ([`BatchReport`]) — results are assembled
//!   by task index: decks in input order, signals in declaration order,
//!   byte-identical reports regardless of scheduling, stealing or
//!   `jobs`.
//!
//! [`run_batch`] is the one-call front door (`covest check --jobs N`,
//! `covest batch`); [`run_sequential`] is the pre-parallel baseline the
//! bench and parity suites compare against. The contract — enforced by
//! `tests/parity.rs` across the full image × simplify × reorder mode
//! cross, and under forced stealing — is that parallelism is *pure
//! mechanism*: coverage percentages, per-property verdicts and
//! uncovered-state sets are bit-identical to the sequential estimator's;
//! only node counts and timings (per-shard managers vs one shared
//! manager) may differ between the pool and the baseline, and even
//! those are identical across `jobs` values.
//!
//! # Example
//!
//! ```
//! use covest_par::{run_batch, DeckJob, ParConfig};
//!
//! let deck = r#"
//! MODULE main
//! VAR b : boolean;
//! ASSIGN init(b) := FALSE; next(b) := !b;
//! SPEC AG (b -> AX !b);
//! OBSERVED b;
//! "#;
//! let jobs = vec![DeckJob::new("toggler", deck)];
//! let report = run_batch(&jobs, &ParConfig { jobs: 2, ..Default::default() })?;
//! assert!(report.all_hold());
//! // The property covers the b-state but not the !b-state: 1 of 2.
//! assert_eq!(report.decks[0].signals[0].row.percent, 50.0);
//! # Ok::<(), covest_par::ParError>(())
//! ```

mod plan;
mod pool;
mod shard;

pub use plan::{DeckJob, ParConfig, WorkPlan};
pub use pool::{
    run_batch, run_batch_with_trace, run_sequential, BatchReport, DeckReport, ParError, SchedStats,
    ShardProfile, SignalOutcome,
};
