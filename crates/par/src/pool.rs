//! The signal-sharded worker pool and the deterministic result merge.
//!
//! A [`covest_bdd::BddManager`] is an `Rc<RefCell<…>>` handle and
//! deliberately **not** `Send`: sharing one node arena across threads
//! would put a lock on every `ite`. The pool therefore shards by
//! *signal*: each queue task gets a private manager, recompiles its deck
//! on it, imports the planner's serialized reachable set (skipping the
//! per-task reachability BFS), and runs the standard sequential
//! estimator for its one signal. Tasks are drained from a single atomic
//! queue by `config.jobs` OS threads — many decks × many signals share
//! one thread budget — and results are reassembled **by task index**, so
//! the report order (and every byte of it) is independent of scheduling.
//!
//! One manager per *task* (not per worker) is a deliberate determinism
//! choice: a worker that happened to run two signals of one deck on a
//! shared manager would report different node counts than one that
//! didn't, making output depend on scheduling. With per-task managers
//! every task is a pure function of (deck source, signal, config), so
//! `--jobs 1` and `--jobs 64` produce byte-identical reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use covest_bdd::{BddDump, BddManager, ReorderConfig, ReorderMode};
use covest_core::{CoverageEstimator, CoverageOptions, CoverageTable, PropertyVerdict, ReportRow};
use covest_mc::ModelChecker;
use covest_telemetry::{
    self as telemetry, Clock, Counters, SpanRecord, Stopwatch, Telemetry, WallClock,
};

use crate::plan::{DeckJob, ParConfig, PlannedDeck, TaskKind, WorkPlan};

/// Errors from planning or running a parallel batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A deck failed to compile (or export) during planning.
    Plan {
        /// Deck display name.
        deck: String,
        /// Underlying error message.
        message: String,
    },
    /// A worker task failed. When several tasks fail, the one with the
    /// lowest task index is reported — deterministically, regardless of
    /// completion order.
    Task {
        /// Deck display name.
        deck: String,
        /// Observed signal, if the task was a coverage task.
        signal: Option<String>,
        /// Underlying error message.
        message: String,
    },
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Plan { deck, message } => write!(f, "planning `{deck}`: {message}"),
            ParError::Task {
                deck,
                signal: Some(signal),
                message,
            } => write!(f, "analyzing `{deck}` signal `{signal}`: {message}"),
            ParError::Task {
                deck,
                signal: None,
                message,
            } => write!(f, "verifying `{deck}`: {message}"),
        }
    }
}

impl std::error::Error for ParError {}

/// The outcome of one per-signal coverage task.
#[derive(Debug, Clone)]
pub struct SignalOutcome {
    /// Deck display name.
    pub deck: String,
    /// Observed signal.
    pub signal: String,
    /// The Table-2 row: percentage, counts, verdicts, the canonical
    /// uncovered-state sample, node counts and timings.
    pub row: ReportRow,
    /// The uncovered-state set, exported name-keyed — importable into
    /// any manager (e.g. the front-end's, for trace generation, or a
    /// parity harness's, for semantic comparison).
    pub uncovered: BddDump,
}

/// The per-task observability record collected when
/// [`ParConfig::profile`] is on: where the task's wall-clock went, the
/// span log its phases recorded, and the deterministic engine counters
/// of its private manager.
///
/// The counters (and spans' deterministic fields) are a pure function of
/// (deck source, signal, config) — byte-identical across `jobs` values
/// and across identical runs. Every `Duration` here is wall-clock and
/// excluded from any parity contract.
#[derive(Debug, Clone)]
pub struct TaskProfile {
    /// Deck display name.
    pub deck: String,
    /// Observed signal for coverage tasks; `None` for verify-only tasks.
    pub signal: Option<String>,
    /// Time between the task becoming runnable and a worker picking it
    /// up.
    pub queue_wait: Duration,
    /// Time recompiling the deck on the task's private manager
    /// (including the startup sifting pass, when configured).
    pub compile: Duration,
    /// Time importing and seeding the planner's reachable set.
    pub import: Duration,
    /// Time in the analysis proper (verification + coverage, or
    /// verification only).
    pub solve: Duration,
    /// Deterministic counters: the telemetry tallies recorded during the
    /// task (image calls, fixpoint iterations, …) plus the manager's
    /// [`covest_bdd::BddStats`] as `bdd_`-prefixed entries.
    pub counters: Counters,
    /// The task's span/event forest (see [`covest_telemetry`]).
    pub spans: Vec<SpanRecord>,
}

/// All results for one deck, in signal declaration order.
#[derive(Debug, Clone)]
pub struct DeckReport {
    /// Deck display name.
    pub name: String,
    /// Number of properties in the deck's suite.
    pub num_properties: usize,
    /// Per-property verdicts (suite order). For coverage decks these are
    /// taken from the first signal's analysis — every signal of a deck
    /// verifies the same suite and necessarily reaches the same verdicts.
    pub verdicts: Vec<PropertyVerdict>,
    /// Per-signal outcomes, in declaration order.
    pub signals: Vec<SignalOutcome>,
    /// Wall-clock the planner spent on this deck (compile + reachability
    /// + export); zero on the sequential baseline, which does not plan.
    pub plan_time: Duration,
    /// Per-task profiles in task order — empty unless
    /// [`ParConfig::profile`] is set (the sequential baseline never
    /// profiles).
    pub profiles: Vec<TaskProfile>,
}

impl DeckReport {
    /// `true` if every property of the deck holds.
    pub fn all_hold(&self) -> bool {
        self.verdicts.iter().all(|v| v.holds)
    }
}

/// The deterministic merge of a whole batch: decks in input order,
/// signals in declaration order — independent of worker scheduling.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-deck reports, in batch input order.
    pub decks: Vec<DeckReport>,
}

impl BatchReport {
    /// `true` if every property of every deck holds.
    pub fn all_hold(&self) -> bool {
        self.decks.iter().all(DeckReport::all_hold)
    }

    /// All signal outcomes flattened, in deterministic report order.
    pub fn outcomes(&self) -> impl Iterator<Item = &SignalOutcome> {
        self.decks.iter().flat_map(|d| d.signals.iter())
    }

    /// The batch as a Table-2-style [`CoverageTable`].
    pub fn table(&self) -> CoverageTable {
        let mut table = CoverageTable::new();
        for o in self.outcomes() {
            table.push(o.row.clone());
        }
        table
    }
}

/// What one task sends back through the channel.
enum TaskPayload {
    Coverage(Box<SignalOutcome>),
    Verdicts(Vec<PropertyVerdict>),
}

/// Runs one queue task on a private, fresh manager. Pure in (deck
/// source, kind, config): no state is shared with any other task.
/// `queue_wait` is how long the task sat runnable before this call;
/// with [`ParConfig::profile`] set, a fresh telemetry recorder is
/// installed for the task's duration and shipped back as a
/// [`TaskProfile`] alongside the payload.
fn run_task(
    deck: &PlannedDeck,
    kind: &TaskKind,
    config: &ParConfig,
    queue_wait: Duration,
) -> Result<(TaskPayload, Option<TaskProfile>), String> {
    if config.profile {
        telemetry::install(Telemetry::new());
    }
    let bdd = BddManager::new();
    let result = run_task_phases(&bdd, deck, kind, config);
    let recorder = telemetry::uninstall();
    let (payload, compile, import, solve) = result?;
    let profile = recorder.map(|rec| {
        let (spans, mut counters) = rec.into_parts();
        for (name, value) in bdd.stats().pairs() {
            counters.add(name, value);
        }
        TaskProfile {
            deck: deck.name.clone(),
            signal: match kind {
                TaskKind::Coverage { signal, .. } => Some(signal.clone()),
                TaskKind::VerifyOnly => None,
            },
            queue_wait,
            compile,
            import,
            solve,
            counters,
            spans,
        }
    });
    Ok((payload, profile))
}

/// The task body proper: compile, import, solve — returning the payload
/// plus each phase's wall-clock. Split out of [`run_task`] so the
/// recorder installed there is uninstalled on *every* exit path.
fn run_task_phases(
    bdd: &BddManager,
    deck: &PlannedDeck,
    kind: &TaskKind,
    config: &ParConfig,
) -> Result<(TaskPayload, Duration, Duration, Duration), String> {
    let _task_span = telemetry::span(match kind {
        TaskKind::Coverage { signal, .. } => format!("task:{}:{signal}", deck.name),
        TaskKind::VerifyOnly => format!("task:{}", deck.name),
    });
    bdd.set_reorder_config(ReorderConfig {
        mode: config.reorder,
        ..Default::default()
    });
    // With COI on, a coverage task compiles the statically pruned cone
    // deck (smaller manager) and imports the cone-projected reachable
    // set; otherwise it compiles the full source and the estimator
    // projects onto the cone instead. Reports are bit-identical either
    // way — the counting universe is the cone in both modes.
    let reduced = match kind {
        TaskKind::Coverage { reduced, .. } => reduced.as_deref(),
        TaskKind::VerifyOnly => None,
    };
    let sw = Stopwatch::start();
    let model = match reduced {
        Some(r) => covest_smv::compile_module_with(bdd, &r.module, config.image)
            .map_err(|e| e.to_string())?,
        None => {
            covest_smv::compile_with(bdd, &deck.source, config.image).map_err(|e| e.to_string())?
        }
    };
    if config.reorder == ReorderMode::Sift {
        bdd.reduce_heap();
    }
    let compile = sw.elapsed();
    // The planner already paid for reachability; import its set instead
    // of re-running the BFS. Name keying makes this correct even though
    // this manager's variable order has its own history.
    let sw = Stopwatch::start();
    let reach_dump = reduced.map_or(&deck.reach, |r| &r.reach);
    let reach = bdd.import_bdd(reach_dump).map_err(|e| e.to_string())?;
    model.fsm.seed_reachable(reach);
    let import = sw.elapsed();

    let sw = Stopwatch::start();
    let payload = match kind {
        TaskKind::Coverage { signal, cone, .. } => {
            let estimator = CoverageEstimator::new(&model.fsm);
            let options = CoverageOptions {
                fairness: model.fairness.clone(),
                cone: Some(cone.as_ref().clone()),
                ..Default::default()
            };
            let analysis = estimator
                .analyze(signal, &model.specs, &options)
                .map_err(|e| e.to_string())?;
            let universe = estimator.universe(options.cone.as_deref());
            let sample = estimator.sample_states_over(
                &analysis.uncovered(),
                &universe,
                config.uncovered_limit,
            );
            let uncovered = analysis
                .uncovered()
                .export_bdd()
                .map_err(|e| e.to_string())?;
            let row = ReportRow::from_analysis(&deck.name, &analysis).with_uncovered_sample(sample);
            TaskPayload::Coverage(Box::new(SignalOutcome {
                deck: deck.name.clone(),
                signal: signal.clone(),
                row,
                uncovered,
            }))
        }
        TaskKind::VerifyOnly => {
            let mut mc = ModelChecker::new(&model.fsm);
            for fair in &model.fairness {
                mc.add_fairness(fair).map_err(|e| e.to_string())?;
            }
            if config.image.simplify != covest_smv::SimplifyConfig::Off {
                mc.set_care(model.fsm.install_reachable_care());
            }
            let mut verdicts = Vec::with_capacity(model.specs.len());
            for spec in &model.specs {
                let verdict = mc.check(&spec.clone().into()).map_err(|e| e.to_string())?;
                verdicts.push(PropertyVerdict {
                    formula: spec.to_string(),
                    holds: verdict.holds(),
                    vacuous: false,
                });
            }
            TaskPayload::Verdicts(verdicts)
        }
    };
    let solve = sw.elapsed();
    Ok((payload, compile, import, solve))
}

impl WorkPlan {
    /// Executes the plan on a pool of `config.jobs` worker threads and
    /// merges the results deterministically: decks in input order,
    /// signals in declaration order, whatever order tasks completed in.
    ///
    /// # Errors
    ///
    /// [`ParError::Task`] for the failed task with the lowest task index
    /// if any task fails (also deterministic under racing failures).
    pub fn run(&self, config: &ParConfig) -> Result<BatchReport, ParError> {
        let workers = self.tasks.len().min(config.effective_jobs()).max(1);
        let next = AtomicUsize::new(0);
        // Dispatch largest-first on the static size estimates (stable by
        // task index), so the biggest cone is not the last pickup on an
        // otherwise drained queue. Results are still slotted by task
        // index — scheduling order never reaches the report.
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.tasks[i].kind.size_hint()));
        let order = &order;
        // Every task of a pre-built plan is runnable from the start, so
        // queue wait is simply the clock reading at pickup.
        let clock = WallClock::new();
        let mut slots: Vec<TaskSlot> = Vec::new();
        slots.resize_with(self.tasks.len(), || None);

        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, TaskResult)>();
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let clock = &clock;
                scope.spawn(move || loop {
                    let pick = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = order.get(pick) else { break };
                    let task = &self.tasks[i];
                    let queue_wait = clock.now();
                    let result = run_task(&self.decks[task.deck], &task.kind, config, queue_wait);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result) in rx {
                slots[i] = Some(result);
            }
        });

        merge_results(
            &self
                .decks
                .iter()
                .map(|d| (d.name.clone(), d.num_properties, d.plan_time))
                .collect::<Vec<_>>(),
            &self.tasks,
            slots,
        )
    }
}

/// What one task delivers: payload plus optional profile, or an error.
type TaskResult = Result<(TaskPayload, Option<TaskProfile>), String>;
type TaskSlot = Option<TaskResult>;

/// Assembles per-task payloads (indexed by task) into the final
/// deterministic report: decks in `decks` order, signals (and profiles)
/// in task order.
fn merge_results(
    decks: &[(String, usize, Duration)],
    tasks: &[crate::plan::Task],
    slots: Vec<TaskSlot>,
) -> Result<BatchReport, ParError> {
    let mut reports: Vec<DeckReport> = decks
        .iter()
        .map(|(name, num_properties, plan_time)| DeckReport {
            name: name.clone(),
            num_properties: *num_properties,
            verdicts: Vec::new(),
            signals: Vec::new(),
            plan_time: *plan_time,
            profiles: Vec::new(),
        })
        .collect();
    for (task, slot) in tasks.iter().zip(slots) {
        let (payload, profile) =
            slot.expect("every task sends exactly one result")
                .map_err(|message| ParError::Task {
                    deck: decks[task.deck].0.clone(),
                    signal: match &task.kind {
                        TaskKind::Coverage { signal, .. } => Some(signal.clone()),
                        TaskKind::VerifyOnly => None,
                    },
                    message,
                })?;
        let report = &mut reports[task.deck];
        match payload {
            TaskPayload::Coverage(outcome) => {
                if report.verdicts.is_empty() {
                    report.verdicts = outcome.row.verdicts.clone();
                }
                report.signals.push(*outcome);
            }
            TaskPayload::Verdicts(verdicts) => report.verdicts = verdicts,
        }
        report.profiles.extend(profile);
    }
    Ok(BatchReport { decks: reports })
}

/// Plans and runs a batch in one call — the front door used by
/// `covest check --jobs N` and `covest batch`.
///
/// Planning and execution are **pipelined**: each deck's tasks are
/// released to the worker pool the moment that deck finishes planning,
/// so workers analyze the first decks while the planner is still
/// compiling the last ones. The observable behavior is identical to
/// `WorkPlan::plan(…)?.run(…)` — same deterministic report, and a plan
/// failure still takes precedence over any task failure, exactly as if
/// planning had completed before the first task ran — the pipelining
/// only moves wall-clock.
///
/// # Errors
///
/// See [`WorkPlan::plan`] and [`WorkPlan::run`].
pub fn run_batch(jobs: &[DeckJob], config: &ParConfig) -> Result<BatchReport, ParError> {
    let workers = config.effective_jobs().max(1);
    let clock = WallClock::new();
    let mut planned: Vec<(String, usize, Duration)> = Vec::new();
    let mut tasks: Vec<crate::plan::Task> = Vec::new();
    let mut plan_error: Option<ParError> = None;
    let mut slots: Vec<TaskSlot> = Vec::new();

    // The `Duration` is the enqueue timestamp (shared-clock reading at
    // release), so the worker can report the task's queue wait.
    type WorkItem = (usize, Arc<PlannedDeck>, TaskKind, Duration);
    let (task_tx, task_rx) = mpsc::channel::<WorkItem>();
    let task_rx = Mutex::new(task_rx);
    let (result_tx, result_rx) = mpsc::channel::<(usize, TaskResult)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let result_tx = result_tx.clone();
            let task_rx = &task_rx;
            let clock = &clock;
            scope.spawn(move || loop {
                // Take the lock only to receive; blocked peers wake as
                // soon as this worker starts computing.
                let item = task_rx.lock().expect("queue lock").recv();
                let Ok((i, deck, kind, enqueued)) = item else {
                    break;
                };
                let queue_wait = clock.now().saturating_sub(enqueued);
                let result = run_task(&deck, &kind, config, queue_wait);
                if result_tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(result_tx);

        // Plan on this thread, releasing each deck's tasks immediately.
        for job in jobs {
            match crate::plan::plan_deck(job, config) {
                Ok((deck, kinds)) => {
                    let deck_idx = planned.len();
                    planned.push((deck.name.clone(), deck.num_properties, deck.plan_time));
                    let deck = Arc::new(deck);
                    // Release this deck's tasks largest-first (stable by
                    // declaration order); task indices — and therefore
                    // the merged report — keep declaration order.
                    let mut release: Vec<(usize, crate::plan::TaskKind)> = Vec::new();
                    for kind in kinds {
                        let i = tasks.len();
                        tasks.push(crate::plan::Task {
                            deck: deck_idx,
                            kind: kind.clone(),
                        });
                        release.push((i, kind));
                    }
                    release.sort_by_key(|(_, kind)| std::cmp::Reverse(kind.size_hint()));
                    for (i, kind) in release {
                        let _ = task_tx.send((i, Arc::clone(&deck), kind, clock.now()));
                    }
                }
                Err(e) => {
                    // Match plan-then-run semantics: a plan failure wins
                    // over every task outcome. In-flight tasks drain
                    // (results discarded below), no new decks are planned.
                    plan_error = Some(e);
                    break;
                }
            }
        }
        drop(task_tx);
        slots.resize_with(tasks.len(), || None);
        for (i, result) in result_rx {
            slots[i] = Some(result);
        }
    });

    if let Some(e) = plan_error {
        return Err(e);
    }
    merge_results(&planned, &tasks, slots)
}

/// The sequential baseline: the same decks analyzed the way the
/// pre-parallel pipeline did — one manager per deck, one compile, one
/// reachability fixpoint shared by all of the deck's signals via
/// [`covest_core::CoverageEstimator::analyze_signals`]. Used by the
/// `parallel_report` bench (wall-clock comparison) and the parity suite
/// (ground truth): percentages, verdicts and uncovered sets must be
/// bit-identical to [`WorkPlan::run`]'s. Node counts and timings differ
/// by construction (shared manager vs per-task managers).
///
/// # Errors
///
/// [`ParError::Plan`] / [`ParError::Task`] mirroring the parallel path.
pub fn run_sequential(jobs: &[DeckJob], config: &ParConfig) -> Result<BatchReport, ParError> {
    let mut reports = Vec::with_capacity(jobs.len());
    for job in jobs {
        let bdd = BddManager::new();
        bdd.set_reorder_config(ReorderConfig {
            mode: config.reorder,
            ..Default::default()
        });
        let model = covest_smv::compile_with(&bdd, &job.source, config.image).map_err(|e| {
            ParError::Plan {
                deck: job.name.clone(),
                message: e.to_string(),
            }
        })?;
        if config.reorder == ReorderMode::Sift {
            bdd.reduce_heap();
        }
        let signals = if job.observed.is_empty() {
            model.observed.clone()
        } else {
            job.observed.clone()
        };
        let task_err = |signal: Option<&String>, message: String| ParError::Task {
            deck: job.name.clone(),
            signal: signal.cloned(),
            message,
        };
        let mut report = DeckReport {
            name: job.name.clone(),
            num_properties: model.specs.len(),
            verdicts: Vec::new(),
            signals: Vec::new(),
            plan_time: Duration::ZERO,
            profiles: Vec::new(),
        };
        if signals.is_empty() {
            let mut mc = ModelChecker::new(&model.fsm);
            for fair in &model.fairness {
                mc.add_fairness(fair)
                    .map_err(|e| task_err(None, e.to_string()))?;
            }
            if config.image.simplify != covest_smv::SimplifyConfig::Off {
                mc.set_care(model.fsm.install_reachable_care());
            }
            for spec in &model.specs {
                let verdict = mc
                    .check(&spec.clone().into())
                    .map_err(|e| task_err(None, e.to_string()))?;
                report.verdicts.push(PropertyVerdict {
                    formula: spec.to_string(),
                    holds: verdict.holds(),
                    vacuous: false,
                });
            }
        } else {
            let estimator = CoverageEstimator::new(&model.fsm);
            // The baseline never compiles reduced decks, but the coverage
            // universe is still the per-signal cone — deck semantics, not
            // a COI-mode artifact — so it stays bit-comparable with the
            // pool under either `coi` setting.
            let module = covest_smv::parse_module(&job.source).map_err(|e| ParError::Plan {
                deck: job.name.clone(),
                message: e.to_string(),
            })?;
            let graph = covest_analyze::DepGraph::new(&module);
            for signal in &signals {
                let cone = covest_analyze::task_cone(&module, &graph, signal)
                    .map_err(|message| task_err(Some(signal), message))?;
                let options = CoverageOptions {
                    fairness: model.fairness.clone(),
                    cone: Some(covest_analyze::cone_bit_names(&module, &cone)),
                    ..Default::default()
                };
                let analysis = estimator
                    .analyze(signal, &model.specs, &options)
                    .map_err(|e| task_err(Some(signal), e.to_string()))?;
                let universe = estimator.universe(options.cone.as_deref());
                let sample = estimator.sample_states_over(
                    &analysis.uncovered(),
                    &universe,
                    config.uncovered_limit,
                );
                let uncovered = analysis
                    .uncovered()
                    .export_bdd()
                    .map_err(|e| task_err(Some(signal), e.to_string()))?;
                let row =
                    ReportRow::from_analysis(&job.name, &analysis).with_uncovered_sample(sample);
                if report.verdicts.is_empty() {
                    report.verdicts = row.verdicts.clone();
                }
                report.signals.push(SignalOutcome {
                    deck: job.name.clone(),
                    signal: signal.clone(),
                    row,
                    uncovered,
                });
            }
        }
        reports.push(report);
    }
    Ok(BatchReport { decks: reports })
}
