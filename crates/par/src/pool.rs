//! The deck-sharded worker pool and the deterministic result merge.
//!
//! A [`covest_bdd::BddManager`] is an `Rc<RefCell<…>>` handle and
//! deliberately **not** `Send`: sharing one node arena across threads
//! would put a lock on every `ite`. The pool therefore shards by
//! *deck partition*: each cone-disjoint group of a deck's signals (a
//! [`crate::shard::Shard`]) gets one private manager, compiles its
//! (union-cone-reduced) module once, runs one reachability fixpoint, and
//! multiplexes its signals on that machine in declaration order. Shards
//! drain from per-worker deques with whole-shard stealing — see
//! [`crate::shard`] — and results are reassembled **by task index**, so
//! the report order (and every byte of it) is independent of scheduling.
//!
//! One manager per *shard* (not per worker) is a deliberate determinism
//! choice: a worker that happened to run two shards on a shared manager
//! would report different node counts than one that didn't, making
//! output depend on scheduling. With per-shard managers every shard is a
//! pure function of (deck source, config), so `--jobs 1` and `--jobs 64`
//! produce byte-identical reports — even when shards are stolen.

use std::time::Duration;

use covest_bdd::{BddDump, BddManager, ReorderConfig, ReorderMode};
use covest_core::{CoverageEstimator, CoverageOptions, CoverageTable, PropertyVerdict, ReportRow};
use covest_mc::ModelChecker;
use covest_telemetry::{Counters, SpanRecord};

use crate::plan::{DeckJob, ParConfig, PlannedDeck, Task, TaskKind, WorkPlan};
use crate::shard::{run_pool, Shard, ShardResult};

/// Minimum fleet size — total static shard estimate, in state bits —
/// that justifies spinning up the pool. Below it [`run_batch`] routes to
/// [`run_sequential`]: a fleet of toy decks finishes before the pool's
/// thread setup pays for itself. The decision is a pure function of the
/// plan (never of `jobs` or core count), so a fleet routes the same way
/// at every `--jobs` value and reports stay byte-identical.
const MIN_POOL_BITS: usize = 16;

/// Errors from planning or running a parallel batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A deck failed to parse (during static planning) or compile (on
    /// its shard's manager).
    Plan {
        /// Deck display name.
        deck: String,
        /// Underlying error message.
        message: String,
    },
    /// A per-signal analysis (or verification) failed. When several
    /// fail, the one with the lowest task index is reported —
    /// deterministically, regardless of completion order.
    Task {
        /// Deck display name.
        deck: String,
        /// Observed signal, if the task was a coverage task.
        signal: Option<String>,
        /// Underlying error message.
        message: String,
    },
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::Plan { deck, message } => write!(f, "planning `{deck}`: {message}"),
            ParError::Task {
                deck,
                signal: Some(signal),
                message,
            } => write!(f, "analyzing `{deck}` signal `{signal}`: {message}"),
            ParError::Task {
                deck,
                signal: None,
                message,
            } => write!(f, "verifying `{deck}`: {message}"),
        }
    }
}

impl std::error::Error for ParError {}

/// The outcome of one per-signal coverage task.
#[derive(Debug, Clone)]
pub struct SignalOutcome {
    /// Deck display name.
    pub deck: String,
    /// Observed signal.
    pub signal: String,
    /// The Table-2 row: percentage, counts, verdicts, the canonical
    /// uncovered-state sample, node counts and timings.
    pub row: ReportRow,
    /// The uncovered-state set, exported name-keyed — importable into
    /// any manager (e.g. the front-end's, for trace generation, or a
    /// parity harness's, for semantic comparison).
    pub uncovered: BddDump,
}

/// The per-shard observability record collected when
/// [`ParConfig::profile`] is on: where the shard's wall-clock went, the
/// span log its phases recorded, and the deterministic engine counters
/// of its private manager.
///
/// The counters (and spans' deterministic fields) are a pure function of
/// (deck source, config) — byte-identical across `jobs` values and
/// across identical runs. Every `Duration` here, and the `stolen` flag,
/// is a wall-clock scheduling fact and excluded from any parity
/// contract.
#[derive(Debug, Clone)]
pub struct ShardProfile {
    /// Deck display name.
    pub deck: String,
    /// The shard's member signals in declaration order; empty for a
    /// verification-only shard.
    pub signals: Vec<String>,
    /// Time between the shard being enqueued and a worker dequeuing it
    /// (its own or a thief) — by construction never more than the
    /// pool's wall-clock.
    pub queue_wait: Duration,
    /// Time compiling the shard's module on its private manager
    /// (including the startup sifting pass, when configured).
    pub compile: Duration,
    /// Time in the shard's one reachability fixpoint + care install
    /// (zero for verification-only shards, which handle care inside
    /// `solve`).
    pub reach: Duration,
    /// Time in the analyses proper (verification + coverage per member
    /// signal, or verification only).
    pub solve: Duration,
    /// `true` if the shard was executed by a worker other than the one
    /// it was dealt to. Scheduling observability only.
    pub stolen: bool,
    /// Index of the pool worker that executed the shard (the thief, if
    /// stolen). Scheduling observability only — it is also the shard's
    /// trace track: tid = `worker + 1` (tid 0 is the driver).
    pub worker: usize,
    /// Per-phase peak-live attribution table (`compile` / `reach` /
    /// `care_install` / `signal:NAME` / `other` → peak live nodes), the
    /// fold of the span forest's memory samples — deterministic, and
    /// its maximum equals the `bdd_peak_live_nodes` counter exactly.
    /// See [`covest_telemetry::memory::peak_by_phase`].
    pub peak_by_phase: Counters,
    /// Deterministic counters: the telemetry tallies recorded during the
    /// shard (image calls, fixpoint iterations, …) plus the manager's
    /// [`covest_bdd::BddStats`] as `bdd_`-prefixed entries.
    pub counters: Counters,
    /// The shard's span/event forest (see [`covest_telemetry`]).
    /// Emptied after streaming when the run carries a trace sink.
    pub spans: Vec<SpanRecord>,
}

impl ShardProfile {
    /// The shard manager's live-node high-water mark (the
    /// `bdd_peak_live_nodes` counter) — also the maximum of
    /// [`ShardProfile::peak_by_phase`].
    pub fn peak_live_nodes(&self) -> u64 {
        self.counters.get("bdd_peak_live_nodes")
    }

    /// `(before, after)` live-node sizes of the post-compile sifting
    /// pass (the `bdd_reorder_size_before`/`_after` counters; both zero
    /// when reordering never ran).
    pub fn reorder_sizes(&self) -> (u64, u64) {
        (
            self.counters.get("bdd_reorder_size_before"),
            self.counters.get("bdd_reorder_size_after"),
        )
    }
}

/// All results for one deck, in signal declaration order.
#[derive(Debug, Clone)]
pub struct DeckReport {
    /// Deck display name.
    pub name: String,
    /// Number of properties in the deck's suite.
    pub num_properties: usize,
    /// Per-property verdicts (suite order). For coverage decks these are
    /// taken from the first signal's analysis — every signal of a deck
    /// verifies the same suite and necessarily reaches the same verdicts.
    pub verdicts: Vec<PropertyVerdict>,
    /// Per-signal outcomes, in declaration order.
    pub signals: Vec<SignalOutcome>,
    /// Wall-clock the planner spent statically analyzing this deck
    /// (parse + cones + shard construction); zero on the sequential
    /// baseline, which does not plan.
    pub plan_time: Duration,
    /// Per-shard profiles in shard order — empty unless
    /// [`ParConfig::profile`] is set (the sequential baseline never
    /// profiles).
    pub profiles: Vec<ShardProfile>,
}

impl DeckReport {
    /// `true` if every property of the deck holds.
    pub fn all_hold(&self) -> bool {
        self.verdicts.iter().all(|v| v.holds)
    }
}

/// Scheduling statistics for one batch run: how the work was executed.
/// Pure observability — every field except `shards` depends on timing
/// and core count, so none of this may reach a deterministic report
/// surface (it is excluded from all parity contracts).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Worker threads actually spawned (0 when routed sequential).
    pub workers: usize,
    /// Shards in the plan.
    pub shards: usize,
    /// Shards executed by a worker other than the one they were dealt
    /// to.
    pub steals: usize,
    /// `true` if [`run_batch`]'s worthiness heuristic sent the fleet to
    /// [`run_sequential`] instead of the pool.
    pub routed_sequential: bool,
}

/// The deterministic merge of a whole batch: decks in input order,
/// signals in declaration order — independent of worker scheduling.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-deck reports, in batch input order.
    pub decks: Vec<DeckReport>,
    /// How the batch was scheduled (non-deterministic observability;
    /// never part of the report's parity surface).
    pub sched: SchedStats,
}

impl BatchReport {
    /// `true` if every property of every deck holds.
    pub fn all_hold(&self) -> bool {
        self.decks.iter().all(DeckReport::all_hold)
    }

    /// All signal outcomes flattened, in deterministic report order.
    pub fn outcomes(&self) -> impl Iterator<Item = &SignalOutcome> {
        self.decks.iter().flat_map(|d| d.signals.iter())
    }

    /// The batch as a Table-2-style [`CoverageTable`].
    pub fn table(&self) -> CoverageTable {
        let mut table = CoverageTable::new();
        for o in self.outcomes() {
            table.push(o.row.clone());
        }
        table
    }
}

/// What one task sends back from its shard.
pub(crate) enum TaskPayload {
    Coverage(Box<SignalOutcome>),
    Verdicts(Vec<PropertyVerdict>),
}

impl WorkPlan {
    /// Executes the plan on a pool of `config.jobs` worker threads (one
    /// deque each, whole-shard stealing) and merges the results
    /// deterministically: decks in input order, signals in declaration
    /// order, whatever order shards completed in — and on whichever
    /// worker.
    ///
    /// Unlike [`run_batch`], this never routes to the sequential
    /// baseline: callers who built a plan get the pool.
    ///
    /// # Errors
    ///
    /// [`ParError::Plan`] if a shard's compile fails; [`ParError::Task`]
    /// for the failed analysis with the lowest task index if any fails
    /// (deterministic under racing failures).
    pub fn run(&self, config: &ParConfig) -> Result<BatchReport, ParError> {
        self.run_inner(config, None)
    }

    /// [`WorkPlan::run`], streaming every profiled shard's span forest
    /// into `sink` as results arrive — one track per worker, the shard
    /// root span tagged with its `stolen` flag. Streamed forests are
    /// dropped from the returned profiles ([`ShardProfile::spans`] comes
    /// back empty), so a long batch holds at most one shard's records at
    /// a time. Without [`ParConfig::profile`] there are no records and
    /// the sink stays untouched.
    pub fn run_with_trace(
        &self,
        config: &ParConfig,
        sink: &mut dyn covest_telemetry::chrome::TraceSink,
    ) -> Result<BatchReport, ParError> {
        self.run_inner(config, Some(sink))
    }

    fn run_inner(
        &self,
        config: &ParConfig,
        sink: Option<&mut dyn covest_telemetry::chrome::TraceSink>,
    ) -> Result<BatchReport, ParError> {
        let (slots, steals, workers) = run_pool(self, config, sink);
        let mut report = merge_shard_results(&self.decks, &self.tasks, &self.shards, slots)?;
        report.sched = SchedStats {
            workers,
            shards: self.shards.len(),
            steals,
            routed_sequential: false,
        };
        Ok(report)
    }
}

/// Assembles per-shard results into the final deterministic report:
/// decks in input order, signals in task order, profiles in shard order.
///
/// Error precedence is deterministic regardless of scheduling: the
/// failure anchored at the lowest task index wins, with a shard-level
/// compile failure anchored at its shard's first task and preempting
/// that shard's per-task failures.
fn merge_shard_results(
    decks: &[PlannedDeck],
    tasks: &[Task],
    shards: &[Shard],
    slots: Vec<Option<ShardResult>>,
) -> Result<BatchReport, ParError> {
    let slots: Vec<ShardResult> = slots
        .into_iter()
        .map(|s| s.expect("every shard reports exactly once"))
        .collect();

    // Error pass: anchor every failure at a task index and pick the
    // lowest (compile failures rank before task failures on a tie).
    let mut best: Option<((usize, u8), ParError)> = None;
    let mut consider = |key: (usize, u8), err: ParError| {
        if best.as_ref().is_none_or(|(k, _)| key < *k) {
            best = Some((key, err));
        }
    };
    for (shard, (result, _)) in shards.iter().zip(&slots) {
        let first = shard.tasks.first().copied().unwrap_or(usize::MAX);
        match result {
            Err(message) => consider(
                (first, 0),
                ParError::Plan {
                    deck: decks[shard.deck].name.clone(),
                    message: message.clone(),
                },
            ),
            Ok(entries) => {
                for (ti, entry) in entries {
                    if let Err(message) = entry {
                        consider(
                            (*ti, 1),
                            ParError::Task {
                                deck: decks[shard.deck].name.clone(),
                                signal: match &tasks[*ti].kind {
                                    TaskKind::Coverage { signal, .. } => Some(signal.clone()),
                                    TaskKind::VerifyOnly => None,
                                },
                                message: message.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
    if let Some((_, err)) = best {
        return Err(err);
    }

    let mut reports: Vec<DeckReport> = decks
        .iter()
        .map(|d| DeckReport {
            name: d.name.clone(),
            num_properties: d.num_properties,
            verdicts: Vec::new(),
            signals: Vec::new(),
            plan_time: d.plan_time,
            profiles: Vec::new(),
        })
        .collect();

    // Scatter payloads to task slots, then gather in task order.
    let mut payloads: Vec<Option<TaskPayload>> = Vec::new();
    payloads.resize_with(tasks.len(), || None);
    for (shard, (result, profile)) in shards.iter().zip(slots) {
        let entries = result.expect("error pass returned above");
        for (ti, entry) in entries {
            payloads[ti] = Some(entry.expect("error pass returned above"));
        }
        reports[shard.deck].profiles.extend(profile);
    }
    for (task, payload) in tasks.iter().zip(payloads) {
        let report = &mut reports[task.deck];
        match payload.expect("every task belongs to exactly one shard") {
            TaskPayload::Coverage(outcome) => {
                if report.verdicts.is_empty() {
                    report.verdicts = outcome.row.verdicts.clone();
                }
                report.signals.push(*outcome);
            }
            TaskPayload::Verdicts(verdicts) => report.verdicts = verdicts,
        }
    }
    Ok(BatchReport {
        decks: reports,
        sched: SchedStats::default(),
    })
}

/// Plans and runs a batch in one call — the front door used by
/// `covest check --jobs N` and `covest batch`.
///
/// Planning is static (parse + cones, no BDDs) and cheap, so it always
/// completes before execution; a plan failure therefore takes precedence
/// over every shard outcome. After planning, a **worthiness heuristic**
/// routes the fleet: if it decomposes into a single shard, or its total
/// static size estimate is under a small threshold, the pool cannot win
/// and the batch runs on [`run_sequential`] instead (reported via
/// [`SchedStats::routed_sequential`]). The decision is a pure function
/// of the plan — never of `jobs` — so a given fleet produces
/// byte-identical reports at every `--jobs` value. Profiled runs
/// ([`ParConfig::profile`]) always take the pool, which is what collects
/// [`ShardProfile`]s.
///
/// # Errors
///
/// See [`WorkPlan::plan`] and [`WorkPlan::run`].
pub fn run_batch(jobs: &[DeckJob], config: &ParConfig) -> Result<BatchReport, ParError> {
    run_batch_inner(jobs, config, None)
}

/// [`run_batch`] with a streaming trace sink — see
/// [`WorkPlan::run_with_trace`]. Profiled fleets always take the pool,
/// so every shard's forest streams; a fleet routed to the sequential
/// baseline (only possible unprofiled) records nothing and leaves the
/// sink untouched.
pub fn run_batch_with_trace(
    jobs: &[DeckJob],
    config: &ParConfig,
    sink: &mut dyn covest_telemetry::chrome::TraceSink,
) -> Result<BatchReport, ParError> {
    run_batch_inner(jobs, config, Some(sink))
}

fn run_batch_inner(
    jobs: &[DeckJob],
    config: &ParConfig,
    sink: Option<&mut dyn covest_telemetry::chrome::TraceSink>,
) -> Result<BatchReport, ParError> {
    let plan = WorkPlan::plan(jobs, config)?;
    if !config.profile && (plan.num_shards() <= 1 || plan.fleet_est_bits() < MIN_POOL_BITS) {
        let mut report = run_sequential(jobs, config)?;
        report.sched = SchedStats {
            workers: 0,
            shards: plan.num_shards(),
            steals: 0,
            routed_sequential: true,
        };
        return Ok(report);
    }
    plan.run_inner(config, sink)
}

/// The sequential baseline: the same decks analyzed the way the
/// pre-parallel pipeline did — one manager per deck, one compile, one
/// reachability fixpoint shared by all of the deck's signals. Used by
/// the `parallel_report` bench (wall-clock comparison), the parity suite
/// (ground truth), and [`run_batch`]'s worthiness routing for fleets too
/// small to amortize the pool: percentages, verdicts and uncovered sets
/// must be bit-identical to [`WorkPlan::run`]'s. Node counts and timings
/// differ by construction (shared whole-deck manager vs per-shard
/// cone-reduced managers).
///
/// # Errors
///
/// [`ParError::Plan`] / [`ParError::Task`] mirroring the parallel path.
pub fn run_sequential(jobs: &[DeckJob], config: &ParConfig) -> Result<BatchReport, ParError> {
    /// Uninstalls the progress channel on every exit path (the `?`s
    /// below would otherwise leave it on the caller's thread).
    struct ProgressGuard(bool);
    impl Drop for ProgressGuard {
        fn drop(&mut self) {
            if self.0 {
                covest_telemetry::progress::uninstall_progress();
            }
        }
    }
    let mut reports = Vec::with_capacity(jobs.len());
    for job in jobs {
        let _progress = ProgressGuard(config.progress);
        if config.progress {
            covest_telemetry::progress::install_progress(
                covest_telemetry::progress::Progress::stderr(
                    config.batch_clock(),
                    job.name.clone(),
                ),
            );
        }
        let bdd = BddManager::new();
        bdd.set_reorder_config(ReorderConfig {
            mode: config.reorder,
            ..Default::default()
        });
        let model = covest_smv::compile_with(&bdd, &job.source, config.image).map_err(|e| {
            ParError::Plan {
                deck: job.name.clone(),
                message: e.to_string(),
            }
        })?;
        if config.reorder == ReorderMode::Sift {
            bdd.reduce_heap();
        }
        let signals = if job.observed.is_empty() {
            model.observed.clone()
        } else {
            job.observed.clone()
        };
        let task_err = |signal: Option<&String>, message: String| ParError::Task {
            deck: job.name.clone(),
            signal: signal.cloned(),
            message,
        };
        let mut report = DeckReport {
            name: job.name.clone(),
            num_properties: model.specs.len(),
            verdicts: Vec::new(),
            signals: Vec::new(),
            plan_time: Duration::ZERO,
            profiles: Vec::new(),
        };
        if signals.is_empty() {
            let mut mc = ModelChecker::new(&model.fsm);
            for fair in &model.fairness {
                mc.add_fairness(fair)
                    .map_err(|e| task_err(None, e.to_string()))?;
            }
            if config.image.simplify != covest_smv::SimplifyConfig::Off {
                mc.set_care(model.fsm.install_reachable_care());
            }
            for spec in &model.specs {
                let verdict = mc
                    .check(&spec.clone().into())
                    .map_err(|e| task_err(None, e.to_string()))?;
                report.verdicts.push(PropertyVerdict {
                    formula: spec.to_string(),
                    holds: verdict.holds(),
                    vacuous: false,
                });
            }
        } else {
            let estimator = CoverageEstimator::new(&model.fsm);
            // The baseline never compiles reduced decks, but the coverage
            // universe is still the per-signal cone — deck semantics, not
            // a COI-mode artifact — so it stays bit-comparable with the
            // pool under either `coi` setting.
            let module = covest_smv::parse_module(&job.source).map_err(|e| ParError::Plan {
                deck: job.name.clone(),
                message: e.to_string(),
            })?;
            let graph = covest_analyze::DepGraph::new(&module);
            for signal in &signals {
                let cone = covest_analyze::task_cone(&module, &graph, signal)
                    .map_err(|message| task_err(Some(signal), message))?;
                let options = CoverageOptions {
                    fairness: model.fairness.clone(),
                    cone: Some(covest_analyze::cone_bit_names(&module, &cone)),
                    ..Default::default()
                };
                let analysis = estimator
                    .analyze(signal, &model.specs, &options)
                    .map_err(|e| task_err(Some(signal), e.to_string()))?;
                let universe = estimator.universe(options.cone.as_deref());
                let sample = estimator.sample_states_over(
                    &analysis.uncovered(),
                    &universe,
                    config.uncovered_limit,
                );
                let uncovered = analysis
                    .uncovered()
                    .export_bdd()
                    .map_err(|e| task_err(Some(signal), e.to_string()))?;
                let row =
                    ReportRow::from_analysis(&job.name, &analysis).with_uncovered_sample(sample);
                if report.verdicts.is_empty() {
                    report.verdicts = row.verdicts.clone();
                }
                report.signals.push(SignalOutcome {
                    deck: job.name.clone(),
                    signal: signal.clone(),
                    row,
                    uncovered,
                });
            }
        }
        reports.push(report);
    }
    Ok(BatchReport {
        decks: reports,
        sched: SchedStats::default(),
    })
}
