//! Shared helpers for the par parity test suites: the full bundled deck
//! set and the semantic-parity assertion both `parity.rs` and
//! `coi_parity.rs` gate on.

use covest_bdd::BddManager;
use covest_par::{BatchReport, DeckJob};

/// Every bundled circuit as a self-contained deck (generated source +
/// its Table-2 property suite), plus every checked-in `models/*.smv`.
pub fn all_decks() -> Vec<DeckJob> {
    use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};
    use std::fmt::Write as _;

    let with_specs = |mut deck: String, specs: &[covest_ctl::Formula]| -> String {
        for spec in specs {
            writeln!(deck, "SPEC {spec};").expect("write to string");
        }
        deck
    };

    let mut decks = Vec::new();

    // The circular queue is the one bundled circuit without a models/
    // fixture; its three observed signals make it the best sharding test.
    let mut queue_suite = circular_queue::wrap_suite_initial();
    queue_suite.extend(circular_queue::full_suite());
    queue_suite.extend(circular_queue::empty_suite());
    decks.push(DeckJob::new(
        "circuit:circular_queue",
        with_specs(circular_queue::deck(4), &queue_suite),
    ));

    let mut buffer_suite = priority_buffer::lo_suite_initial(4);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(4));
    decks.push(DeckJob::new(
        "circuit:priority_buffer",
        with_specs(priority_buffer::deck(4, false), &buffer_suite),
    ));

    decks.push(DeckJob::new(
        "circuit:counter",
        with_specs(counter::deck(), &counter::increment_properties()),
    ));

    let mut pipeline_suite = pipeline::out_suite_initial(4);
    pipeline_suite.extend(pipeline::out_suite_hold());
    decks.push(DeckJob::new(
        "circuit:pipeline",
        with_specs(pipeline::deck(4), &pipeline_suite),
    ));

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut model_decks: Vec<DeckJob> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = format!("models/{}", path.file_name().unwrap().to_string_lossy());
                let src = std::fs::read_to_string(&path).expect("readable deck");
                Some(DeckJob::new(name, src))
            } else {
                None
            }
        })
        .collect();
    model_decks.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(!model_decks.is_empty(), "no decks under {}", dir.display());
    decks.extend(model_decks);
    decks
}

/// Asserts every deterministic *semantic* field agrees between two
/// batch reports: percentages bit-for-bit, counts, verdicts, vacuity,
/// uncovered samples, and the uncovered sets themselves (imported into
/// one shared manager, where canonicity makes equality literal).
pub fn assert_semantic_parity(label: &str, seq: &BatchReport, par: &BatchReport) {
    assert_eq!(seq.decks.len(), par.decks.len(), "{label}: deck count");
    for (sd, pd) in seq.decks.iter().zip(&par.decks) {
        assert_eq!(sd.name, pd.name, "{label}: deck order");
        assert_eq!(
            sd.num_properties, pd.num_properties,
            "{label}: {0}",
            sd.name
        );
        assert_eq!(sd.verdicts, pd.verdicts, "{label}: {0} verdicts", sd.name);
        assert_eq!(
            sd.signals.len(),
            pd.signals.len(),
            "{label}: {0} signal count",
            sd.name
        );
        for (so, po) in sd.signals.iter().zip(&pd.signals) {
            let tag = format!("{label}: {}/{}", sd.name, so.signal);
            assert_eq!(so.signal, po.signal, "{tag}: signal order");
            assert_eq!(
                so.row.percent.to_bits(),
                po.row.percent.to_bits(),
                "{tag}: coverage percent (seq {} vs par {})",
                so.row.percent,
                po.row.percent
            );
            assert_eq!(
                so.row.covered_states.to_bits(),
                po.row.covered_states.to_bits(),
                "{tag}: covered count"
            );
            assert_eq!(
                so.row.space_states.to_bits(),
                po.row.space_states.to_bits(),
                "{tag}: space count"
            );
            assert_eq!(so.row.verdicts, po.row.verdicts, "{tag}: verdicts");
            assert_eq!(
                so.row.uncovered_sample, po.row.uncovered_sample,
                "{tag}: canonical uncovered sample"
            );
            // Semantic set equality on a shared manager.
            let probe = BddManager::new();
            let s = probe.import_bdd(&so.uncovered).expect("seq dump imports");
            let p = probe.import_bdd(&po.uncovered).expect("par dump imports");
            assert_eq!(s, p, "{tag}: uncovered set");
        }
    }
}
