//! Determinism contract for the telemetry profiles: every per-shard
//! counter is a pure function of (deck source, configuration) — never of
//! the scheduler, the thread count, the clock, or which worker executed
//! (or stole) the shard. Two identical runs must produce byte-identical
//! counters, and so must runs that differ only in `jobs` — including
//! runs where stealing provably occurred. Durations (`queue_wait`,
//! `compile`, `reach`, `solve`) and the `stolen` flag are wall-clock
//! scheduling facts by definition and are deliberately excluded from
//! every parity assertion here.

use std::fmt::Write as _;
use std::sync::Arc;

use covest_par::{
    run_batch, run_batch_with_trace, BatchReport, DeckJob, ParConfig, ShardProfile, WorkPlan,
};
use covest_telemetry::chrome::{TraceFormat, TraceWriter};
use covest_telemetry::{memory, ManualClock};

/// Every bundled circuit (generated deck + its Table-2 suite) plus
/// every checked-in `models/*.smv` deck — the same fleet the parity
/// suite locks.
fn all_decks() -> Vec<DeckJob> {
    use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};

    let with_specs = |mut deck: String, specs: &[covest_ctl::Formula]| -> String {
        for spec in specs {
            writeln!(deck, "SPEC {spec};").expect("write to string");
        }
        deck
    };

    let mut queue_suite = circular_queue::wrap_suite_initial();
    queue_suite.extend(circular_queue::full_suite());
    queue_suite.extend(circular_queue::empty_suite());
    let mut buffer_suite = priority_buffer::lo_suite_initial(4);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(4));
    let mut pipeline_suite = pipeline::out_suite_initial(4);
    pipeline_suite.extend(pipeline::out_suite_hold());

    let mut decks = vec![
        DeckJob::new(
            "circuit:circular_queue",
            with_specs(circular_queue::deck(4), &queue_suite),
        ),
        DeckJob::new(
            "circuit:priority_buffer",
            with_specs(priority_buffer::deck(4, false), &buffer_suite),
        ),
        DeckJob::new(
            "circuit:counter",
            with_specs(counter::deck(), &counter::increment_properties()),
        ),
        DeckJob::new(
            "circuit:pipeline",
            with_specs(pipeline::deck(4), &pipeline_suite),
        ),
    ];

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut model_decks: Vec<DeckJob> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = format!("models/{}", path.file_name().unwrap().to_string_lossy());
                let src = std::fs::read_to_string(&path).expect("readable deck");
                Some(DeckJob::new(name, src))
            } else {
                None
            }
        })
        .collect();
    model_decks.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(!model_decks.is_empty(), "no decks under {}", dir.display());
    decks.extend(model_decks);
    decks
}

/// A fleet engineered so that stealing *provably* occurs at high job
/// counts: one heavyweight shard (a sized counter whose suite dwarfs
/// everything else) plus a tail of one-bit togglers. Largest-first
/// round-robin deals the heavy shard to worker 0 along with at least one
/// toggler behind it; the other workers drain their togglers long before
/// the heavy shard finishes and must steal worker 0's queued leftovers.
fn steal_storm_decks() -> Vec<DeckJob> {
    use covest_circuits::counter;
    let mut heavy = counter::deck_sized(48);
    for spec in counter::increment_properties_sized(48) {
        writeln!(heavy, "SPEC {spec};").expect("write to string");
    }
    let mut decks = vec![DeckJob::new("storm:heavy_counter", heavy)];
    for i in 0..8 {
        let toggler = format!(
            "MODULE main\nVAR b : boolean;\nASSIGN init(b) := FALSE; next(b) := !b;\n\
             SPEC AG (b -> AX !b);\nOBSERVED b;\n-- toggler {i}\n"
        );
        decks.push(DeckJob::new(format!("storm:toggler_{i}"), toggler));
    }
    decks
}

/// Flattens a report's profiles in merge order (decks in input order,
/// shards in shard-index order within each deck).
fn profiles(report: &BatchReport) -> Vec<&ShardProfile> {
    report
        .decks
        .iter()
        .flat_map(|d| d.profiles.iter())
        .collect()
}

/// Asserts two runs produced the same shards with byte-identical
/// counters. Durations and steal flags are never compared.
fn assert_counter_parity(label: &str, a: &BatchReport, b: &BatchReport) {
    let (pa, pb) = (profiles(a), profiles(b));
    assert_eq!(pa.len(), pb.len(), "{label}: profile count");
    assert!(!pa.is_empty(), "{label}: profiling produced no profiles");
    for (x, y) in pa.iter().zip(&pb) {
        let tag = format!("{label}: {} / {:?}", x.deck, x.signals);
        assert_eq!(x.deck, y.deck, "{tag}: deck order");
        assert_eq!(x.signals, y.signals, "{tag}: signal order");
        assert_eq!(x.counters, y.counters, "{tag}: counters drifted");
        assert!(!x.counters.is_empty(), "{tag}: counters recorded");
    }
}

#[test]
fn identical_runs_produce_identical_counters() {
    let decks = all_decks();
    let config = ParConfig {
        jobs: 2,
        profile: true,
        ..Default::default()
    };
    let a = run_batch(&decks, &config).expect("first run");
    let b = run_batch(&decks, &config).expect("second run");
    assert_counter_parity("repeat", &a, &b);
}

#[test]
fn per_shard_counters_identical_across_job_counts() {
    let decks = all_decks();
    let one = ParConfig {
        jobs: 1,
        profile: true,
        ..Default::default()
    };
    let four = ParConfig {
        jobs: 4,
        profile: true,
        ..Default::default()
    };
    let a = run_batch(&decks, &one).expect("jobs=1 run");
    let b = run_batch(&decks, &four).expect("jobs=4 run");
    assert_counter_parity("jobs 1 vs 4", &a, &b);
}

/// The steal-storm case: at `jobs=8` on the engineered fleet the steal
/// counter must actually move (otherwise this test pins nothing), and
/// the per-shard counters must still match a `jobs=1` run byte for byte
/// — stealing relocates a shard between threads *before* its manager
/// exists, so it cannot perturb a single deterministic value.
#[test]
fn counters_survive_forced_stealing() {
    let decks = steal_storm_decks();
    let one = ParConfig {
        jobs: 1,
        profile: true,
        ..Default::default()
    };
    let eight = ParConfig {
        jobs: 8,
        profile: true,
        ..Default::default()
    };
    let a = run_batch(&decks, &one).expect("jobs=1 run");
    let b = run_batch(&decks, &eight).expect("jobs=8 run");
    assert_eq!(a.sched.steals, 0, "one worker has nobody to steal from");
    assert!(
        b.sched.steals > 0,
        "the storm fleet must force at least one steal at jobs=8 \
         (workers {}, shards {})",
        b.sched.workers,
        b.sched.shards,
    );
    assert_counter_parity("steal storm jobs 1 vs 8", &a, &b);
}

#[test]
fn profiles_absent_unless_requested() {
    let decks = all_decks();
    let report = run_batch(&decks, &ParConfig::default()).expect("unprofiled run");
    assert!(
        report.decks.iter().all(|d| d.profiles.is_empty()),
        "profiles must only be collected when ParConfig::profile is set"
    );
}

/// A profiled config driven by an injected [`ManualClock`]: the clock
/// never advances, so every wall-clock stamp in the record stream ties
/// at zero and the *entire* span forest — names, nesting, deterministic
/// fields, memory-timeline samples — becomes parity-comparable.
fn clocked(jobs: usize) -> ParConfig {
    ParConfig {
        jobs,
        profile: true,
        clock: Some(Arc::new(ManualClock::new())),
        ..Default::default()
    }
}

/// Under an injected manual clock, two identical profiled runs agree on
/// the complete span forests — including the memory-timeline samples
/// (`mem_live`/`mem_bytes`/`mem_peak` and their `_close` twins) stamped
/// at every span boundary and BFS step — and on the peak-live
/// attribution tables folded from them. The table's maximum must also
/// reconcile exactly with the shard manager's high-water counter.
#[test]
fn memory_timelines_identical_across_repeat_runs() {
    let decks = all_decks();
    let a = run_batch(&decks, &clocked(2)).expect("first run");
    let b = run_batch(&decks, &clocked(2)).expect("second run");
    assert_counter_parity("clocked repeat", &a, &b);
    for (x, y) in profiles(&a).iter().zip(profiles(&b)) {
        let tag = format!("{} / {:?}", x.deck, x.signals);
        assert_eq!(x.spans, y.spans, "{tag}: span forest drifted");
        assert!(
            x.spans
                .iter()
                .any(|r| r.fields.iter().any(|(n, _)| n == memory::OPEN_FIELDS[0])),
            "{tag}: no memory samples in the span forest"
        );
        assert_eq!(
            x.peak_by_phase, y.peak_by_phase,
            "{tag}: peak attribution drifted"
        );
        assert_eq!(
            memory::table_peak(&x.peak_by_phase),
            x.peak_live_nodes(),
            "{tag}: peak table must reconcile with bdd_peak_live_nodes"
        );
    }
}

/// The span forests themselves are `--jobs`-independent: a shard records
/// the same spans, fields, labels and memory samples whether the pool
/// ran one worker or four (the `worker` index and the durations differ,
/// but under the manual clock every in-record stamp is zero).
#[test]
fn span_forests_identical_across_job_counts() {
    let decks = all_decks();
    let a = run_batch(&decks, &clocked(1)).expect("jobs=1 run");
    let b = run_batch(&decks, &clocked(4)).expect("jobs=4 run");
    assert_counter_parity("clocked jobs 1 vs 4", &a, &b);
    for (x, y) in profiles(&a).iter().zip(profiles(&b)) {
        let tag = format!("{} / {:?}", x.deck, x.signals);
        assert_eq!(x.spans, y.spans, "{tag}: span forest depends on jobs");
        assert_eq!(
            x.peak_by_phase, y.peak_by_phase,
            "{tag}: peak attribution depends on jobs"
        );
    }
}

/// The streamed Chrome trace carries the same spans and args at every
/// job count. Track ids, track order, and the `stolen` scheduling flag
/// legitimately differ, so events are normalized (tid scrubbed, stolen
/// dropped, metadata lines excluded) and compared as sorted multisets.
#[test]
fn chrome_trace_events_identical_across_job_counts() {
    fn normalized_events(jobs: usize) -> Vec<String> {
        let decks = all_decks();
        let mut writer = TraceWriter::new(Vec::new(), TraceFormat::Chrome);
        run_batch_with_trace(&decks, &clocked(jobs), &mut writer).expect("profiled traced run");
        let text = String::from_utf8(writer.into_inner().expect("vec sink")).expect("utf-8 trace");
        let mut events: Vec<String> = text
            .lines()
            .filter(|l| l.contains("\"ph\":\"X\"") || l.contains("\"ph\":\"i\""))
            .map(|l| {
                let mut e = l.trim_end_matches(',').to_owned();
                for stolen in [",\"stolen\":0", ",\"stolen\":1"] {
                    e = e.replace(stolen, "");
                }
                let at = e.find("\"tid\":").expect("events carry a tid");
                let rest = e[at + 6..].find(',').expect("tid is not last") + at + 6;
                format!("{}\"tid\":_{}", &e[..at], &e[rest..])
            })
            .collect();
        events.sort();
        events
    }
    let one = normalized_events(1);
    let four = normalized_events(4);
    assert!(!one.is_empty(), "trace recorded no events");
    assert_eq!(
        one, four,
        "chrome trace span names/args must not depend on --jobs"
    );
}

/// Streaming empties the profile's span buffer (the writer owns the
/// records now), while the unstreamed run keeps them — the bounded
/// memory contract of `--trace` on long batches.
#[test]
fn streaming_drains_profile_span_buffers() {
    let decks = all_decks();
    let mut writer = TraceWriter::new(Vec::new(), TraceFormat::Jsonl);
    let streamed = run_batch_with_trace(&decks, &clocked(2), &mut writer).expect("streamed");
    writer.finish().expect("vec sink");
    let buffered = run_batch(&decks, &clocked(2)).expect("buffered");
    assert!(
        profiles(&streamed).iter().all(|p| p.spans.is_empty()),
        "streamed profiles must not retain span forests"
    );
    assert!(
        profiles(&buffered).iter().all(|p| !p.spans.is_empty()),
        "unstreamed profiles must retain span forests"
    );
    // Draining the spans must not lose the attribution table.
    for (s, b) in profiles(&streamed).iter().zip(profiles(&buffered)) {
        assert_eq!(s.peak_by_phase, b.peak_by_phase, "{}", s.deck);
    }
}

/// Queue wait is attributed per shard as (dequeue − enqueue), so no
/// single shard can ever report waiting longer than the whole pool ran:
/// `queue_max ≤ wall`. (The *total* across shards may legitimately
/// exceed wall-clock — N shards wait concurrently — which is why the
/// bench reports a mean and a max; see DESIGN.md.)
#[test]
fn queue_wait_never_exceeds_pool_wall_clock() {
    let decks = all_decks();
    let config = ParConfig {
        jobs: 2,
        profile: true,
        ..Default::default()
    };
    let plan = WorkPlan::plan(&decks, &config).expect("plans");
    let sw = covest_telemetry::Stopwatch::start();
    let report = plan.run(&config).expect("runs");
    let wall = sw.elapsed();
    let queue_max = profiles(&report)
        .iter()
        .map(|p| p.queue_wait)
        .max()
        .expect("profiles present");
    assert!(
        queue_max <= wall,
        "per-shard queue wait ({queue_max:?}) exceeded pool wall-clock ({wall:?})"
    );
}
