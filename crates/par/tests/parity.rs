//! Sequential ↔ parallel parity: the worker pool is pure mechanism.
//!
//! Over **every** bundled circuit and every `models/*.smv` deck, across
//! the full `--image mono|part` × `--simplify off|restrict|constrain` ×
//! `--reorder off|auto` mode cross, the parallel engine must produce
//! coverage percentages (bit-for-bit, via `f64::to_bits`), per-property
//! verdicts, vacuity flags, state counts and uncovered-state **sets**
//! (compared semantically, by importing both sides' name-keyed dumps
//! into one manager where canonicity turns semantic equality into handle
//! equality) identical to the sequential estimator. Separate tests pin
//! scheduling-independence: `jobs = 1` and `jobs = 4` (and a steal-storm
//! `jobs = 8` case where work stealing provably occurs) must agree on
//! every deterministic field, node counts and uncovered samples
//! included, because every shard runs its signals in declaration order
//! on its own fresh manager — wherever, and by whomever, it executes.

mod common;

use common::{all_decks, assert_semantic_parity};
use covest_bdd::ReorderMode;
use covest_par::{run_batch, run_sequential, DeckJob, ParConfig, WorkPlan};
use covest_smv::{ImageConfig, ImageMethod, SimplifyConfig};

fn config(image: ImageMethod, simplify: SimplifyConfig, reorder: ReorderMode) -> ParConfig {
    ParConfig {
        jobs: 4,
        image: ImageConfig {
            method: image,
            simplify,
            ..Default::default()
        },
        reorder,
        ..Default::default()
    }
}

/// The acceptance-criteria cross: every deck, every image × simplify ×
/// reorder combination, sequential estimator vs 4-way parallel pool.
#[test]
fn parallel_matches_sequential_across_mode_cross() {
    let decks = all_decks();
    for image in [ImageMethod::Partitioned, ImageMethod::Monolithic] {
        for simplify in [
            SimplifyConfig::Off,
            SimplifyConfig::Restrict,
            SimplifyConfig::Constrain,
        ] {
            for reorder in [ReorderMode::Off, ReorderMode::Auto] {
                let cfg = config(image, simplify, reorder);
                let label = format!("image={image} simplify={simplify} reorder={reorder:?}");
                let seq = run_sequential(&decks, &cfg).expect("sequential baseline");
                let par = run_batch(&decks, &cfg).expect("parallel batch");
                assert_semantic_parity(&label, &seq, &par);
            }
        }
    }
}

/// Scheduling independence: with per-shard managers, `jobs = 1` and
/// `jobs = 4` reports agree on *everything* deterministic — including
/// node counts, which would diverge if shards shared managers across
/// scheduling boundaries.
#[test]
fn job_count_does_not_change_the_report() {
    let decks = all_decks();
    let base = ParConfig::default();
    let plan = WorkPlan::plan(&decks, &base).expect("plans");
    let one = plan
        .run(&ParConfig {
            jobs: 1,
            ..base.clone()
        })
        .expect("jobs=1");
    let four = plan.run(&ParConfig { jobs: 4, ..base }).expect("jobs=4");
    assert_semantic_parity("jobs=1 vs jobs=4", &one, &four);
    for (a, b) in one.outcomes().zip(four.outcomes()) {
        assert_eq!(a.row.verify_nodes, b.row.verify_nodes, "{}", a.signal);
        assert_eq!(a.row.coverage_nodes, b.row.coverage_nodes, "{}", a.signal);
        assert_eq!(a.uncovered, b.uncovered, "{}: dump bytes", a.signal);
    }
}

/// The steal-storm case: a fleet engineered so whole-shard stealing
/// *provably* happens at `jobs = 8` (one heavyweight sized-counter shard
/// dealt to worker 0 with togglers queued behind it; the other workers
/// drain instantly and must steal) — and the full report is still byte
/// identical to `jobs = 1`: rows, node counts, and every uncovered-dump
/// byte. Stealing moves a shard between threads before its private
/// manager exists, so it cannot perturb a single deterministic value.
#[test]
fn report_bytes_survive_forced_stealing() {
    use covest_circuits::counter;
    use std::fmt::Write as _;
    let mut heavy = counter::deck_sized(64);
    for spec in counter::increment_properties_sized(64) {
        writeln!(heavy, "SPEC {spec};").expect("write to string");
    }
    let mut decks = vec![DeckJob::new("storm:heavy_counter", heavy)];
    for i in 0..8 {
        let toggler = format!(
            "MODULE main\nVAR b : boolean;\nASSIGN init(b) := FALSE; next(b) := !b;\n\
             SPEC AG (b -> AX !b);\nOBSERVED b;\n-- toggler {i}\n"
        );
        decks.push(DeckJob::new(format!("storm:toggler_{i}"), toggler));
    }

    let base = ParConfig::default();
    let one = run_batch(
        &decks,
        &ParConfig {
            jobs: 1,
            ..base.clone()
        },
    )
    .expect("jobs=1");
    let eight = run_batch(&decks, &ParConfig { jobs: 8, ..base }).expect("jobs=8");
    assert!(
        !one.sched.routed_sequential && !eight.sched.routed_sequential,
        "the storm fleet must be pool-worthy"
    );
    assert_eq!(one.sched.steals, 0, "one worker has nobody to steal from");
    assert!(
        eight.sched.steals > 0,
        "the storm fleet must force at least one steal at jobs=8 \
         (workers {}, shards {})",
        eight.sched.workers,
        eight.sched.shards,
    );
    assert_semantic_parity("steal storm jobs 1 vs 8", &one, &eight);
    for (a, b) in one.outcomes().zip(eight.outcomes()) {
        assert_eq!(a.row.verify_nodes, b.row.verify_nodes, "{}", a.signal);
        assert_eq!(a.row.coverage_nodes, b.row.coverage_nodes, "{}", a.signal);
        assert_eq!(a.uncovered, b.uncovered, "{}: dump bytes", a.signal);
    }
}

/// The planner decomposes per the paper's algorithm: one task per
/// observed signal, declaration order, verification-only decks get one
/// task, and the queue spans all decks (one shared thread budget).
#[test]
fn plan_shape_follows_signal_decomposition() {
    let toggler =
        "MODULE main\nVAR b : boolean;\nASSIGN init(b) := FALSE; next(b) := !b;\nSPEC AX b;\n";
    let decks = vec![
        DeckJob::new("no-signals", toggler),
        DeckJob {
            name: "override".into(),
            source: format!("{toggler}OBSERVED b;\n"),
            observed: vec!["b".into(), "b".into()],
        },
    ];
    let plan = WorkPlan::plan(&decks, &ParConfig::default()).expect("plans");
    assert_eq!(plan.num_decks(), 2);
    assert_eq!(plan.num_tasks(), 3, "1 verify-only + 2 override signals");
    assert_eq!(plan.num_coverage_tasks(), 2);
    let report = plan.run(&ParConfig::default()).expect("runs");
    assert_eq!(report.decks[0].signals.len(), 0);
    assert_eq!(report.decks[0].verdicts.len(), 1);
    assert_eq!(report.decks[1].signals.len(), 2);
}

/// Worker errors surface deterministically: the failed task with the
/// lowest task index wins, regardless of which worker hit it first.
#[test]
fn unknown_signal_fails_deterministically() {
    let toggler =
        "MODULE main\nVAR b : boolean;\nASSIGN init(b) := FALSE; next(b) := !b;\nSPEC AX b;\n";
    let decks = vec![DeckJob {
        name: "bad".into(),
        source: toggler.to_owned(),
        observed: vec!["nope1".into(), "nope2".into()],
    }];
    let cfg = ParConfig {
        jobs: 4,
        ..Default::default()
    };
    for _ in 0..4 {
        match run_batch(&decks, &cfg) {
            Err(covest_par::ParError::Task { deck, signal, .. }) => {
                assert_eq!(deck, "bad");
                assert_eq!(signal.as_deref(), Some("nope1"), "lowest task index wins");
            }
            other => panic!("expected a task error, got {other:?}"),
        }
    }
}

/// A bad deck is rejected at planning time, before any thread spawns.
#[test]
fn malformed_deck_fails_in_the_planner() {
    let decks = vec![DeckJob::new("broken", "MODULE main\nVAR x : snake;\n")];
    match run_batch(&decks, &ParConfig::default()) {
        Err(covest_par::ParError::Plan { deck, .. }) => assert_eq!(deck, "broken"),
        other => panic!("expected a plan error, got {other:?}"),
    }
}
