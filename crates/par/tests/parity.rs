//! Sequential ↔ parallel parity: the worker pool is pure mechanism.
//!
//! Over **every** bundled circuit and every `models/*.smv` deck, across
//! the full `--image mono|part` × `--simplify off|restrict|constrain` ×
//! `--reorder off|auto` mode cross, the parallel engine must produce
//! coverage percentages (bit-for-bit, via `f64::to_bits`), per-property
//! verdicts, vacuity flags, state counts and uncovered-state **sets**
//! (compared semantically, by importing both sides' name-keyed dumps
//! into one manager where canonicity turns semantic equality into handle
//! equality) identical to the sequential estimator. A separate test
//! pins scheduling-independence: `jobs = 1` and `jobs = 4` must agree on
//! every deterministic field, node counts and uncovered samples
//! included, because every task runs on its own fresh manager.

use covest_bdd::{BddManager, ReorderMode};
use covest_par::{run_batch, run_sequential, BatchReport, DeckJob, ParConfig, WorkPlan};
use covest_smv::{ImageConfig, ImageMethod, SimplifyConfig};

/// Every bundled circuit as a self-contained deck (generated source +
/// its Table-2 property suite), plus every checked-in `models/*.smv`.
fn all_decks() -> Vec<DeckJob> {
    use covest_circuits::{circular_queue, counter, pipeline, priority_buffer};
    use std::fmt::Write as _;

    let with_specs = |mut deck: String, specs: &[covest_ctl::Formula]| -> String {
        for spec in specs {
            writeln!(deck, "SPEC {spec};").expect("write to string");
        }
        deck
    };

    let mut decks = Vec::new();

    // The circular queue is the one bundled circuit without a models/
    // fixture; its three observed signals make it the best sharding test.
    let mut queue_suite = circular_queue::wrap_suite_initial();
    queue_suite.extend(circular_queue::full_suite());
    queue_suite.extend(circular_queue::empty_suite());
    decks.push(DeckJob::new(
        "circuit:circular_queue",
        with_specs(circular_queue::deck(4), &queue_suite),
    ));

    let mut buffer_suite = priority_buffer::lo_suite_initial(4);
    buffer_suite.push(priority_buffer::lo_missing_case());
    buffer_suite.extend(priority_buffer::hi_suite(4));
    decks.push(DeckJob::new(
        "circuit:priority_buffer",
        with_specs(priority_buffer::deck(4, false), &buffer_suite),
    ));

    decks.push(DeckJob::new(
        "circuit:counter",
        with_specs(counter::deck(), &counter::increment_properties()),
    ));

    let mut pipeline_suite = pipeline::out_suite_initial(4);
    pipeline_suite.extend(pipeline::out_suite_hold());
    decks.push(DeckJob::new(
        "circuit:pipeline",
        with_specs(pipeline::deck(4), &pipeline_suite),
    ));

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut model_decks: Vec<DeckJob> = std::fs::read_dir(&dir)
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "smv") {
                let name = format!("models/{}", path.file_name().unwrap().to_string_lossy());
                let src = std::fs::read_to_string(&path).expect("readable deck");
                Some(DeckJob::new(name, src))
            } else {
                None
            }
        })
        .collect();
    model_decks.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(!model_decks.is_empty(), "no decks under {}", dir.display());
    decks.extend(model_decks);
    decks
}

/// Asserts every deterministic *semantic* field agrees between two
/// batch reports: percentages bit-for-bit, counts, verdicts, vacuity,
/// uncovered samples, and the uncovered sets themselves (imported into
/// one shared manager, where canonicity makes equality literal).
fn assert_semantic_parity(label: &str, seq: &BatchReport, par: &BatchReport) {
    assert_eq!(seq.decks.len(), par.decks.len(), "{label}: deck count");
    for (sd, pd) in seq.decks.iter().zip(&par.decks) {
        assert_eq!(sd.name, pd.name, "{label}: deck order");
        assert_eq!(
            sd.num_properties, pd.num_properties,
            "{label}: {0}",
            sd.name
        );
        assert_eq!(sd.verdicts, pd.verdicts, "{label}: {0} verdicts", sd.name);
        assert_eq!(
            sd.signals.len(),
            pd.signals.len(),
            "{label}: {0} signal count",
            sd.name
        );
        for (so, po) in sd.signals.iter().zip(&pd.signals) {
            let tag = format!("{label}: {}/{}", sd.name, so.signal);
            assert_eq!(so.signal, po.signal, "{tag}: signal order");
            assert_eq!(
                so.row.percent.to_bits(),
                po.row.percent.to_bits(),
                "{tag}: coverage percent (seq {} vs par {})",
                so.row.percent,
                po.row.percent
            );
            assert_eq!(
                so.row.covered_states.to_bits(),
                po.row.covered_states.to_bits(),
                "{tag}: covered count"
            );
            assert_eq!(
                so.row.space_states.to_bits(),
                po.row.space_states.to_bits(),
                "{tag}: space count"
            );
            assert_eq!(so.row.verdicts, po.row.verdicts, "{tag}: verdicts");
            assert_eq!(
                so.row.uncovered_sample, po.row.uncovered_sample,
                "{tag}: canonical uncovered sample"
            );
            // Semantic set equality on a shared manager.
            let probe = BddManager::new();
            let s = probe.import_bdd(&so.uncovered).expect("seq dump imports");
            let p = probe.import_bdd(&po.uncovered).expect("par dump imports");
            assert_eq!(s, p, "{tag}: uncovered set");
        }
    }
}

fn config(image: ImageMethod, simplify: SimplifyConfig, reorder: ReorderMode) -> ParConfig {
    ParConfig {
        jobs: 4,
        image: ImageConfig {
            method: image,
            simplify,
            ..Default::default()
        },
        reorder,
        ..Default::default()
    }
}

/// The acceptance-criteria cross: every deck, every image × simplify ×
/// reorder combination, sequential estimator vs 4-way parallel pool.
#[test]
fn parallel_matches_sequential_across_mode_cross() {
    let decks = all_decks();
    for image in [ImageMethod::Partitioned, ImageMethod::Monolithic] {
        for simplify in [
            SimplifyConfig::Off,
            SimplifyConfig::Restrict,
            SimplifyConfig::Constrain,
        ] {
            for reorder in [ReorderMode::Off, ReorderMode::Auto] {
                let cfg = config(image, simplify, reorder);
                let label = format!("image={image} simplify={simplify} reorder={reorder:?}");
                let seq = run_sequential(&decks, &cfg).expect("sequential baseline");
                let par = run_batch(&decks, &cfg).expect("parallel batch");
                assert_semantic_parity(&label, &seq, &par);
            }
        }
    }
}

/// Scheduling independence: with per-task managers, `jobs = 1` and
/// `jobs = 4` reports agree on *everything* deterministic — including
/// node counts, which would diverge if tasks shared managers.
#[test]
fn job_count_does_not_change_the_report() {
    let decks = all_decks();
    let base = ParConfig::default();
    let plan = WorkPlan::plan(&decks, &base).expect("plans");
    let one = plan.run(&ParConfig { jobs: 1, ..base }).expect("jobs=1");
    let four = plan.run(&ParConfig { jobs: 4, ..base }).expect("jobs=4");
    assert_semantic_parity("jobs=1 vs jobs=4", &one, &four);
    for (a, b) in one.outcomes().zip(four.outcomes()) {
        assert_eq!(a.row.verify_nodes, b.row.verify_nodes, "{}", a.signal);
        assert_eq!(a.row.coverage_nodes, b.row.coverage_nodes, "{}", a.signal);
        assert_eq!(a.uncovered, b.uncovered, "{}: dump bytes", a.signal);
    }
}

/// The planner decomposes per the paper's algorithm: one task per
/// observed signal, declaration order, verification-only decks get one
/// task, and the queue spans all decks (one shared thread budget).
#[test]
fn plan_shape_follows_signal_decomposition() {
    let toggler =
        "MODULE main\nVAR b : boolean;\nASSIGN init(b) := FALSE; next(b) := !b;\nSPEC AX b;\n";
    let decks = vec![
        DeckJob::new("no-signals", toggler),
        DeckJob {
            name: "override".into(),
            source: format!("{toggler}OBSERVED b;\n"),
            observed: vec!["b".into(), "b".into()],
        },
    ];
    let plan = WorkPlan::plan(&decks, &ParConfig::default()).expect("plans");
    assert_eq!(plan.num_decks(), 2);
    assert_eq!(plan.num_tasks(), 3, "1 verify-only + 2 override signals");
    assert_eq!(plan.num_coverage_tasks(), 2);
    let report = plan.run(&ParConfig::default()).expect("runs");
    assert_eq!(report.decks[0].signals.len(), 0);
    assert_eq!(report.decks[0].verdicts.len(), 1);
    assert_eq!(report.decks[1].signals.len(), 2);
}

/// Worker errors surface deterministically: the failed task with the
/// lowest task index wins, regardless of which worker hit it first.
#[test]
fn unknown_signal_fails_deterministically() {
    let toggler =
        "MODULE main\nVAR b : boolean;\nASSIGN init(b) := FALSE; next(b) := !b;\nSPEC AX b;\n";
    let decks = vec![DeckJob {
        name: "bad".into(),
        source: toggler.to_owned(),
        observed: vec!["nope1".into(), "nope2".into()],
    }];
    let cfg = ParConfig {
        jobs: 4,
        ..Default::default()
    };
    for _ in 0..4 {
        match run_batch(&decks, &cfg) {
            Err(covest_par::ParError::Task { deck, signal, .. }) => {
                assert_eq!(deck, "bad");
                assert_eq!(signal.as_deref(), Some("nope1"), "lowest task index wins");
            }
            other => panic!("expected a task error, got {other:?}"),
        }
    }
}

/// A bad deck is rejected at planning time, before any thread spawns.
#[test]
fn malformed_deck_fails_in_the_planner() {
    let decks = vec![DeckJob::new("broken", "MODULE main\nVAR x : snake;\n")];
    match run_batch(&decks, &ParConfig::default()) {
        Err(covest_par::ParError::Plan { deck, .. }) => assert_eq!(deck, "broken"),
        other => panic!("expected a plan error, got {other:?}"),
    }
}
