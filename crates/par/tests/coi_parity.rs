//! Cone-of-influence parity: `--coi on` and `--coi off` are two
//! implementations of one contract.
//!
//! With COI on, each coverage task compiles the statically pruned cone
//! deck and imports the cone-projected reachable set; with COI off it
//! compiles the full deck and the estimator projects onto the cone
//! afterwards. The counting/sampling universe is the signal's cone
//! either way, so every deterministic report field — percentages
//! (bit-for-bit), state counts, verdicts, vacuity flags, canonical
//! uncovered samples, and the uncovered *sets* themselves — must agree
//! exactly. A deterministic sweep pins the whole bundled deck set under
//! the default config; a property test samples random engine configs
//! (image × simplify × reorder × jobs) per deck.

mod common;

use common::{all_decks, assert_semantic_parity};
use covest_bdd::ReorderMode;
use covest_par::{run_batch, ParConfig};
use covest_smv::{ImageConfig, ImageMethod, SimplifyConfig};
use proptest::prelude::*;

fn config(
    coi: bool,
    image: ImageMethod,
    simplify: SimplifyConfig,
    reorder: ReorderMode,
) -> ParConfig {
    ParConfig {
        jobs: 4,
        image: ImageConfig {
            method: image,
            simplify,
            ..Default::default()
        },
        reorder,
        coi,
        ..Default::default()
    }
}

/// Every bundled circuit and every `models/*.smv` deck: COI on and off
/// produce identical reports under the default engine config.
#[test]
fn coi_modes_agree_on_every_deck() {
    let decks = all_decks();
    let on = run_batch(
        &decks,
        &ParConfig {
            coi: true,
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("coi on");
    let off = run_batch(
        &decks,
        &ParConfig {
            coi: false,
            jobs: 4,
            ..Default::default()
        },
    )
    .expect("coi off");
    assert_semantic_parity("coi on vs off", &on, &off);
}

proptest! {
    /// Random (deck, image, simplify, reorder, jobs) samples: the two
    /// COI modes agree on every deterministic report field.
    #[test]
    fn coi_modes_agree_under_random_configs(
        pick in 0..1000usize,
        img in 0..2usize,
        simp in 0..3usize,
        ro in 0..2usize,
        jobs in 1..5usize,
    ) {
        let decks = all_decks();
        let deck = vec![decks[pick % decks.len()].clone()];
        let image = [ImageMethod::Partitioned, ImageMethod::Monolithic][img];
        let simplify = [
            SimplifyConfig::Off,
            SimplifyConfig::Restrict,
            SimplifyConfig::Constrain,
        ][simp];
        let reorder = [ReorderMode::Off, ReorderMode::Auto][ro];
        let label = format!(
            "deck={} image={image} simplify={simplify} reorder={reorder:?} jobs={jobs}",
            deck[0].name
        );
        let mut on = config(true, image, simplify, reorder);
        on.jobs = jobs;
        let mut off = config(false, image, simplify, reorder);
        off.jobs = jobs;
        let ron = run_batch(&deck, &on).expect("coi on");
        let roff = run_batch(&deck, &off).expect("coi off");
        assert_semantic_parity(&label, &ron, &roff);
    }
}
