//! Golden lint tests: every seeded fixture deck under
//! `models/lint_fixtures/` is flagged with exactly the defect it seeds,
//! and every shipped deck under `models/` lints clean.

use std::path::PathBuf;

use covest_analyze::{lint_source, rules, LintReport, Severity};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn lint_file(rel: &str) -> LintReport {
    let path = repo_root().join(rel);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    lint_source(&src)
}

/// One expected finding: `(rule, severity, line, name)`.
type Expected = (&'static str, Severity, usize, &'static str);

fn assert_findings(rel: &str, expected: &[Expected]) {
    let report = lint_file(rel);
    let got: Vec<(&str, Severity, usize, &str)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.severity, d.line, d.name.as_str()))
        .collect();
    let want: Vec<(&str, Severity, usize, &str)> =
        expected.iter().map(|&(r, s, l, n)| (r, s, l, n)).collect();
    assert_eq!(got, want, "unexpected findings for {rel}:\n{report:#?}");
}

#[test]
fn parse_error_fixture() {
    assert_findings(
        "models/lint_fixtures/parse_error.smv",
        &[(rules::PARSE_ERROR, Severity::Error, 5, "")],
    );
}

#[test]
fn bad_property_fixture() {
    assert_findings(
        "models/lint_fixtures/bad_property.smv",
        &[(rules::BAD_PROPERTY, Severity::Error, 8, "")],
    );
}

#[test]
fn undefined_name_fixture() {
    assert_findings(
        "models/lint_fixtures/undefined_name.smv",
        &[(rules::UNDEFINED_NAME, Severity::Error, 7, "ghost")],
    );
}

#[test]
fn define_cycle_fixture() {
    assert_findings(
        "models/lint_fixtures/define_cycle.smv",
        &[
            (rules::DEFINE_CYCLE, Severity::Error, 6, "a"),
            (rules::DEFINE_CYCLE, Severity::Error, 7, "b"),
        ],
    );
}

#[test]
fn missing_next_fixture() {
    assert_findings(
        "models/lint_fixtures/missing_next.smv",
        &[(rules::MISSING_NEXT, Severity::Error, 5, "y")],
    );
}

#[test]
fn dead_var_fixture() {
    assert_findings(
        "models/lint_fixtures/dead_var.smv",
        &[(rules::DEAD_VAR, Severity::Warning, 6, "zombie")],
    );
}

#[test]
fn constant_signal_fixture() {
    assert_findings(
        "models/lint_fixtures/constant_signal.smv",
        &[(rules::CONSTANT_SIGNAL, Severity::Warning, 5, "stuck")],
    );
}

#[test]
fn out_of_cone_fixture() {
    assert_findings(
        "models/lint_fixtures/out_of_cone.smv",
        &[(rules::OUT_OF_CONE, Severity::Warning, 13, "side")],
    );
}

/// Every shipped deck lints clean — the same gate CI runs with
/// `covest lint --strict models/*.smv`.
#[test]
fn shipped_models_lint_clean() {
    let dir = repo_root().join("models");
    let mut checked = 0;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("models dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "smv"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("read deck");
        let report = lint_source(&src);
        assert!(
            report.is_clean(),
            "{} must lint clean:\n{:#?}",
            path.display(),
            report.diagnostics
        );
        checked += 1;
    }
    assert!(checked >= 4, "expected the shipped decks, found {checked}");
}

/// An `allow` pragma without a name suppresses the whole rule; with a
/// name it suppresses only that subject.
#[test]
fn allow_pragmas_filter_findings() {
    let deck = |pragma: &str| {
        format!(
            "MODULE main\n{pragma}\nVAR x : boolean;\n    zombie : boolean;\n\
             ASSIGN\n  init(x) := FALSE;\n  next(x) := !x;\n\
             init(zombie) := FALSE;\n  next(zombie) := zombie & x;\n\
             SPEC AG (x | !x);\nOBSERVED x;\n"
        )
    };
    assert_eq!(lint_source(&deck("")).warnings(), 1);
    assert!(lint_source(&deck("-- covest-lint: allow(dead-var)")).is_clean());
    assert!(lint_source(&deck("-- covest-lint: allow(dead-var, zombie)")).is_clean());
    assert_eq!(
        lint_source(&deck("-- covest-lint: allow(dead-var, other)")).warnings(),
        1
    );
}
