//! # covest-analyze
//!
//! Static analysis of parsed model decks — everything that can be learned
//! from the [`covest_smv::Module`] AST *before* a single BDD node is
//! built:
//!
//! - [`DepGraph`] — the variable-dependency graph: the support of every
//!   `next`/`init` assignment and `DEFINE` body, with names resolved to
//!   declared variables (enumeration literals resolve to their declaring
//!   variable) and a transitive-closure [`DepGraph::cone`] operation.
//! - [`lint_source`] / [`lint_module`] — the `covest lint` rule catalog:
//!   deterministic, stably-ordered diagnostics for undefined names, dead
//!   variables, constant signals, combinational `DEFINE` cycles, missing
//!   `next` assignments, and observed signals outside every property's
//!   cone. See [`rules`] for the catalog and `DESIGN.md` for semantics.
//! - [`task_cone`] / [`reduce_module`] / [`cone_bit_names`] — classic
//!   cone-of-influence (COI) reduction for a coverage task: the set of
//!   variables the properties, fairness constraints, and one observed
//!   signal transitively depend on, and a pruned deck containing exactly
//!   those variables. The reduced deck compiles to a smaller manager yet
//!   yields bit-identical coverage reports (the exactness argument is in
//!   DESIGN.md §"Static deck analysis & cone-of-influence").
//!
//! # Example
//!
//! ```
//! use covest_analyze::{task_cone, DepGraph};
//! use covest_smv::parse_module;
//!
//! let deck = r#"
//! VAR a : boolean; b : boolean;
//! ASSIGN
//!   init(a) := FALSE; next(a) := !a;
//!   init(b) := FALSE; next(b) := a | b;
//! SPEC AG (a -> AX !a);
//! OBSERVED a;
//! "#;
//! let module = parse_module(deck)?;
//! let graph = DepGraph::new(&module);
//! let cone = task_cone(&module, &graph, "a").unwrap();
//! assert!(cone.contains("a") && !cone.contains("b"));
//! # Ok::<(), covest_smv::ModelError>(())
//! ```

mod graph;
mod lint;
mod reduce;

pub use graph::{DepGraph, NameKind};
pub use lint::{lint_module, lint_source, rules, Diagnostic, LintReport, Severity};
pub use reduce::{cone_bit_names, reduce_module, reduce_module_multi, task_cone, union_cone};
