//! The variable-dependency graph of a parsed deck.

use std::collections::{BTreeMap, BTreeSet};

use covest_smv::{Expr, Module, VarType};

/// How a bare identifier in a deck expression resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameKind {
    /// A declared `VAR` or `IVAR`.
    Var,
    /// A `DEFINE` macro.
    Define,
    /// An enumeration literal; the payload is the declaring variable.
    EnumLiteral(String),
    /// Not declared anywhere in the deck.
    Unknown,
}

/// The static dependency graph of a module: for every declared variable,
/// the set of variables its `next`/`init` expressions read (with `DEFINE`
/// macros expanded and enumeration literals attributed to their declaring
/// variable), and for every `DEFINE`, its resolved variable support.
///
/// All sets are `BTreeSet`s keyed by variable *name*, so iteration order —
/// and everything derived from it — is deterministic.
#[derive(Debug)]
pub struct DepGraph {
    var_index: BTreeMap<String, usize>,
    define_index: BTreeMap<String, usize>,
    literal_owner: BTreeMap<String, String>,
    /// Per declared variable (declaration order): variables read by its
    /// `next` and `init` expressions.
    var_deps: Vec<BTreeSet<String>>,
    /// Per `DEFINE` (declaration order): resolved variable support.
    define_vars: Vec<BTreeSet<String>>,
    /// Per `DEFINE` (declaration order): directly referenced `DEFINE`s.
    define_refs: Vec<BTreeSet<usize>>,
}

/// Collects every bare identifier occurring in an expression.
fn expr_names(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Bool(_) | Expr::Int(_) => {}
        Expr::Name(n) => {
            out.insert(n.clone());
        }
        Expr::Not(a) => expr_names(a, out),
        Expr::Bin(_, a, b) => {
            expr_names(a, out);
            expr_names(b, out);
        }
        Expr::Case(arms) => {
            for (g, v) in arms {
                expr_names(g, out);
                expr_names(v, out);
            }
        }
    }
}

impl DepGraph {
    /// Builds the dependency graph of `module`.
    pub fn new(module: &Module) -> Self {
        let var_index: BTreeMap<String, usize> = module
            .vars
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        let define_index: BTreeMap<String, usize> = module
            .defines
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        // First declaration wins for enumeration literals; variables and
        // defines shadow literals (matching the compiler's name lookup).
        let mut literal_owner: BTreeMap<String, String> = BTreeMap::new();
        for d in &module.vars {
            if let VarType::Enum(lits) = &d.ty {
                for l in lits {
                    literal_owner
                        .entry(l.clone())
                        .or_insert_with(|| d.name.clone());
                }
            }
        }

        let mut g = DepGraph {
            var_index,
            define_index,
            literal_owner,
            var_deps: vec![BTreeSet::new(); module.vars.len()],
            define_vars: vec![BTreeSet::new(); module.defines.len()],
            define_refs: vec![BTreeSet::new(); module.defines.len()],
        };

        for (i, def) in module.defines.iter().enumerate() {
            let mut names = BTreeSet::new();
            expr_names(&def.expr, &mut names);
            for n in &names {
                if let Some(&j) = g.define_index.get(n) {
                    g.define_refs[i].insert(j);
                }
            }
            let mut vars = BTreeSet::new();
            let mut visiting = BTreeSet::new();
            visiting.insert(def.name.clone());
            for n in &names {
                g.resolve_into(module, n, &mut vars, &mut visiting);
            }
            g.define_vars[i] = vars;
        }

        for assign in module.nexts.iter().chain(module.inits.iter()) {
            let Some(&vi) = g.var_index.get(&assign.name) else {
                continue;
            };
            let mut names = BTreeSet::new();
            expr_names(&assign.expr, &mut names);
            let mut vars = std::mem::take(&mut g.var_deps[vi]);
            let mut visiting = BTreeSet::new();
            for n in &names {
                g.resolve_into(module, n, &mut vars, &mut visiting);
            }
            g.var_deps[vi] = vars;
        }

        g
    }

    /// Classifies a bare identifier the way the deck compiler does:
    /// variables shadow `DEFINE`s, which shadow enumeration literals.
    pub fn classify(&self, name: &str) -> NameKind {
        if self.var_index.contains_key(name) {
            NameKind::Var
        } else if self.define_index.contains_key(name) {
            NameKind::Define
        } else if let Some(owner) = self.literal_owner.get(name) {
            NameKind::EnumLiteral(owner.clone())
        } else {
            NameKind::Unknown
        }
    }

    /// Resolves `name` to the declared variables it denotes (a variable to
    /// itself, a `DEFINE` to its transitive variable support, an
    /// enumeration literal to its declaring variable) and inserts them into
    /// `vars`. `visiting` guards against `DEFINE` cycles.
    fn resolve_into(
        &self,
        module: &Module,
        name: &str,
        vars: &mut BTreeSet<String>,
        visiting: &mut BTreeSet<String>,
    ) {
        if self.var_index.contains_key(name) {
            vars.insert(name.to_owned());
        } else if let Some(&di) = self.define_index.get(name) {
            if !visiting.insert(name.to_owned()) {
                return; // cycle; reported by lint
            }
            let mut names = BTreeSet::new();
            expr_names(&module.defines[di].expr, &mut names);
            for n in &names {
                self.resolve_into(module, n, vars, visiting);
            }
            visiting.remove(name);
        } else if let Some(owner) = self.literal_owner.get(name) {
            vars.insert(owner.clone());
        }
        // Unknown names contribute nothing; lint reports them.
    }

    /// Resolves a set of seed names (variables, `DEFINE`s, or enumeration
    /// literals) to variables; used to start a cone closure.
    pub fn resolve_names<'a>(
        &self,
        module: &Module,
        seeds: impl IntoIterator<Item = &'a str>,
    ) -> BTreeSet<String> {
        let mut vars = BTreeSet::new();
        let mut visiting = BTreeSet::new();
        for s in seeds {
            self.resolve_into(module, s, &mut vars, &mut visiting);
        }
        vars
    }

    /// The variables an assigned variable reads through its `next` and
    /// `init` expressions (macros expanded), or `None` if `name` is not a
    /// declared variable.
    pub fn var_deps(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.var_index.get(name).map(|&i| &self.var_deps[i])
    }

    /// The resolved variable support of a `DEFINE`, or `None` if `name` is
    /// not a macro.
    pub fn define_vars(&self, name: &str) -> Option<&BTreeSet<String>> {
        self.define_index.get(name).map(|&i| &self.define_vars[i])
    }

    /// The cone of influence of a set of seed variables: the least set of
    /// declared variables containing the seeds and closed under
    /// [`DepGraph::var_deps`]. Input variables read by cone members are in
    /// the cone.
    pub fn cone(&self, seeds: &BTreeSet<String>) -> BTreeSet<String> {
        let mut cone: BTreeSet<String> = seeds
            .iter()
            .filter(|n| self.var_index.contains_key(n.as_str()))
            .cloned()
            .collect();
        let mut work: Vec<String> = cone.iter().cloned().collect();
        while let Some(v) = work.pop() {
            let i = self.var_index[&v];
            for d in &self.var_deps[i] {
                if cone.insert(d.clone()) {
                    work.push(d.clone());
                }
            }
        }
        cone
    }

    /// Names of `DEFINE`s that lie on a combinational `DEFINE` cycle, in
    /// declaration order.
    pub fn define_cycles(&self, module: &Module) -> Vec<String> {
        let n = module.defines.len();
        // A define is cyclic iff it can reach itself in the define-ref
        // graph. The graphs are tiny; a per-node DFS is fine.
        let mut cyclic = Vec::new();
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = self.define_refs[start].iter().copied().collect();
            let mut hits_self = false;
            while let Some(i) = stack.pop() {
                if i == start {
                    hits_self = true;
                    break;
                }
                if !seen[i] {
                    seen[i] = true;
                    stack.extend(self.define_refs[i].iter().copied());
                }
            }
            if hits_self {
                cyclic.push(module.defines[start].name.clone());
            }
        }
        cyclic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_smv::parse_module;

    const DECK: &str = r#"
VAR mode : {idle, run, halt};
    x : boolean;
    y : 0..3;
    z : boolean;
IVAR go : boolean;
DEFINE running := mode = run;
       twice := running & x;
ASSIGN
  init(mode) := idle;
  next(mode) := case go : run; TRUE : mode; esac;
  init(x) := FALSE;
  next(x) := twice | x;
  init(y) := 0;
  next(y) := case y < 3 : y + 1; TRUE : 0; esac;
  init(z) := FALSE;
  next(z) := z;
"#;

    #[test]
    fn classification_and_supports() {
        let m = parse_module(DECK).expect("parses");
        let g = DepGraph::new(&m);
        assert_eq!(g.classify("x"), NameKind::Var);
        assert_eq!(g.classify("go"), NameKind::Var);
        assert_eq!(g.classify("running"), NameKind::Define);
        assert_eq!(g.classify("run"), NameKind::EnumLiteral("mode".into()));
        assert_eq!(g.classify("nope"), NameKind::Unknown);

        // next(x) reads the macro `twice` which expands to {mode, x}.
        let deps = g.var_deps("x").unwrap();
        assert!(deps.contains("mode") && deps.contains("x"));
        assert!(!deps.contains("y"));
        // DEFINE support resolves enum literals to the declaring var.
        assert_eq!(
            g.define_vars("running").unwrap().iter().collect::<Vec<_>>(),
            vec!["mode"]
        );
    }

    #[test]
    fn cone_closes_over_next_supports() {
        let m = parse_module(DECK).expect("parses");
        let g = DepGraph::new(&m);
        let cone = g.cone(&["x".to_owned()].into_iter().collect());
        // x ← twice ← {mode, x}; mode ← go. y and z are outside.
        assert!(cone.contains("x") && cone.contains("mode") && cone.contains("go"));
        assert!(!cone.contains("y") && !cone.contains("z"));
    }

    #[test]
    fn define_cycles_are_detected() {
        let m = parse_module(
            "VAR a : boolean;\nDEFINE p := q | a; q := p; r := a;\nASSIGN init(a) := FALSE; next(a) := a;",
        )
        .expect("parses");
        let g = DepGraph::new(&m);
        assert_eq!(g.define_cycles(&m), vec!["p".to_owned(), "q".to_owned()]);
        // Cycle resolution still terminates and keeps the sound part.
        assert!(g.define_vars("p").unwrap().contains("a"));
    }
}
