//! The `covest lint` rule catalog: deterministic diagnostics computed from
//! the parsed deck alone.
//!
//! Ordering contract: diagnostics are sorted by (subject declaration
//! index, source line, rule name, subject name), so output is stable
//! across runs and suitable for golden tests. Expression-level findings
//! (no declared subject) sort after declaration-anchored ones on the same
//! line.
//!
//! Suppression: a deck comment of the form
//! `-- covest-lint: allow(rule)` or `-- covest-lint: allow(rule, name)`
//! anywhere in the file suppresses matching diagnostics.

use std::fmt;

use covest_ctl::parse_formula;
use covest_smv::{parse_module, Expr, Module};

use crate::graph::{DepGraph, NameKind};
use crate::reduce::union_cone;

/// Rule identifiers, as printed in diagnostics and accepted by
/// `allow(...)` pragmas.
pub mod rules {
    /// The deck does not parse; nothing else can be checked.
    pub const PARSE_ERROR: &str = "parse-error";
    /// A `SPEC` or `FAIRNESS` body the CTL parser rejects.
    pub const BAD_PROPERTY: &str = "bad-property";
    /// An identifier that is not a variable, `DEFINE`, or enum literal.
    pub const UNDEFINED_NAME: &str = "undefined-name";
    /// A combinational `DEFINE` cycle.
    pub const DEFINE_CYCLE: &str = "define-cycle";
    /// A state variable with no `next(...)` assignment.
    pub const MISSING_NEXT: &str = "missing-next";
    /// A variable outside the cone of every property, fairness
    /// constraint, and observed signal.
    pub const DEAD_VAR: &str = "dead-var";
    /// `next(v) := v` with a constant `init(v)` — the signal never moves.
    pub const CONSTANT_SIGNAL: &str = "constant-signal";
    /// An observed signal outside every single property's cone.
    pub const OUT_OF_CONE: &str = "out-of-cone";
}

/// Diagnostic severity. Errors always fail `covest lint`; warnings fail
/// only under `--strict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but compilable.
    Warning,
    /// The deck is broken (will not compile, or a property is unusable).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// The subject name (a variable, `DEFINE`, or identifier; may be
    /// empty for whole-deck findings).
    pub name: String,
    /// Human-readable explanation.
    pub message: String,
    /// Declaration index of the subject variable, or `usize::MAX` for
    /// findings not anchored to a declaration; primary sort key.
    pub decl_index: usize,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: {} [{}] {}",
            self.line, self.severity, self.rule, self.message
        )
    }
}

/// The outcome of linting one deck.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings in the documented stable order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints deck source: parses it, applies every rule, then filters
/// findings suppressed by `-- covest-lint: allow(...)` pragmas and sorts
/// the rest into the documented stable order.
pub fn lint_source(src: &str) -> LintReport {
    let mut diags = match parse_module(src) {
        Ok(module) => lint_module(&module),
        Err(e) => vec![Diagnostic {
            rule: rules::PARSE_ERROR,
            severity: Severity::Error,
            line: e.line,
            name: String::new(),
            message: e.to_string(),
            decl_index: usize::MAX,
        }],
    };
    let allows = parse_allow_pragmas(src);
    diags.retain(|d| {
        !allows
            .iter()
            .any(|(rule, name)| *rule == d.rule && name.as_deref().is_none_or(|n| n == d.name))
    });
    diags.sort_by(|a, b| {
        (a.decl_index, a.line, a.rule, &a.name).cmp(&(b.decl_index, b.line, b.rule, &b.name))
    });
    LintReport { diagnostics: diags }
}

/// Applies every lint rule to a parsed module. Findings are unsorted and
/// unsuppressed; use [`lint_source`] for the full pipeline.
pub fn lint_module(module: &Module) -> Vec<Diagnostic> {
    let graph = DepGraph::new(module);
    let mut out = Vec::new();

    check_undefined_names(module, &graph, &mut out);
    check_properties(module, &graph, &mut out);
    check_define_cycles(module, &graph, &mut out);
    check_vars(module, &graph, &mut out);
    check_observed_cones(module, &graph, &mut out);

    out
}

/// Parses `-- covest-lint: allow(rule[, name])` pragmas out of raw deck
/// source. Malformed pragmas are ignored.
fn parse_allow_pragmas(src: &str) -> Vec<(String, Option<String>)> {
    let mut allows = Vec::new();
    for line in src.lines() {
        let Some(comment) = line.split_once("--").map(|(_, c)| c) else {
            continue;
        };
        let Some(rest) = comment.trim_start().strip_prefix("covest-lint:") else {
            continue;
        };
        let Some(inner) = rest
            .trim_start()
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(inner, _)| inner)
        else {
            continue;
        };
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        match parts.as_slice() {
            [rule] if !rule.is_empty() => allows.push(((*rule).to_owned(), None)),
            [rule, name] if !rule.is_empty() => {
                allows.push(((*rule).to_owned(), Some((*name).to_owned())));
            }
            _ => {}
        }
    }
    allows
}

/// Collects every bare identifier in `e` with no duplicate suppression
/// (first occurrence order is irrelevant here; findings are sorted).
fn expr_names(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Bool(_) | Expr::Int(_) => {}
        Expr::Name(n) => out.push(n.clone()),
        Expr::Not(a) => expr_names(a, out),
        Expr::Bin(_, a, b) => {
            expr_names(a, out);
            expr_names(b, out);
        }
        Expr::Case(arms) => {
            for (g, v) in arms {
                expr_names(g, out);
                expr_names(v, out);
            }
        }
    }
}

fn undefined(name: &str, line: usize, context: &str) -> Diagnostic {
    Diagnostic {
        rule: rules::UNDEFINED_NAME,
        severity: Severity::Error,
        line,
        name: name.to_owned(),
        message: format!("`{name}` in {context} is not a variable, DEFINE, or enum literal"),
        decl_index: usize::MAX,
    }
}

fn check_undefined_names(module: &Module, graph: &DepGraph, out: &mut Vec<Diagnostic>) {
    let check_expr = |e: &Expr, line: usize, context: &str, out: &mut Vec<Diagnostic>| {
        let mut names = Vec::new();
        expr_names(e, &mut names);
        names.sort();
        names.dedup();
        for n in names {
            if graph.classify(&n) == NameKind::Unknown {
                out.push(undefined(&n, line, context));
            }
        }
    };

    for a in &module.inits {
        if graph.classify(&a.name) != NameKind::Var {
            out.push(undefined(&a.name, a.line, "an init() target"));
        }
        check_expr(&a.expr, a.line, &format!("init({})", a.name), out);
    }
    for a in &module.nexts {
        if graph.classify(&a.name) != NameKind::Var {
            out.push(undefined(&a.name, a.line, "a next() target"));
        }
        check_expr(&a.expr, a.line, &format!("next({})", a.name), out);
    }
    for d in &module.defines {
        check_expr(&d.expr, d.line, &format!("DEFINE {}", d.name), out);
    }
    for o in &module.observed {
        if graph.classify(&o.name) == NameKind::Unknown {
            out.push(undefined(&o.name, o.line, "the OBSERVED list"));
        }
    }
}

fn check_properties(module: &Module, graph: &DepGraph, out: &mut Vec<Diagnostic>) {
    for (section, s) in module
        .specs
        .iter()
        .map(|s| ("SPEC", s))
        .chain(module.fairness.iter().map(|s| ("FAIRNESS", s)))
    {
        match parse_formula(&s.text) {
            Err(e) => out.push(Diagnostic {
                rule: rules::BAD_PROPERTY,
                severity: Severity::Error,
                line: s.line,
                name: String::new(),
                message: format!("{section} `{}` does not parse: {e}", s.text),
                decl_index: usize::MAX,
            }),
            Ok(f) => {
                let mut atoms = f.signals();
                atoms.sort();
                atoms.dedup();
                for a in atoms {
                    if graph.classify(&a) == NameKind::Unknown {
                        out.push(undefined(&a, s.line, &format!("a {section} property")));
                    }
                }
            }
        }
    }
}

fn check_define_cycles(module: &Module, graph: &DepGraph, out: &mut Vec<Diagnostic>) {
    for name in graph.define_cycles(module) {
        let def = module.define(&name).expect("cycle member is a define");
        out.push(Diagnostic {
            rule: rules::DEFINE_CYCLE,
            severity: Severity::Error,
            line: def.line,
            name: name.clone(),
            message: format!("DEFINE `{name}` lies on a combinational cycle"),
            decl_index: usize::MAX,
        });
    }
}

fn check_vars(module: &Module, graph: &DepGraph, out: &mut Vec<Diagnostic>) {
    let live = union_cone(module, graph);
    for (i, d) in module.vars.iter().enumerate() {
        if !d.input && !module.nexts.iter().any(|a| a.name == d.name) {
            out.push(Diagnostic {
                rule: rules::MISSING_NEXT,
                severity: Severity::Error,
                line: d.line,
                name: d.name.clone(),
                message: format!("state variable `{}` has no next() assignment", d.name),
                decl_index: i,
            });
        }
        if !live.contains(&d.name) {
            let kind = if d.input { "input" } else { "state variable" };
            out.push(Diagnostic {
                rule: rules::DEAD_VAR,
                severity: Severity::Warning,
                line: d.line,
                name: d.name.clone(),
                message: format!(
                    "{kind} `{}` is outside the cone of every property and observed signal",
                    d.name
                ),
                decl_index: i,
            });
        }
        let next_is_self = module
            .nexts
            .iter()
            .any(|a| a.name == d.name && a.expr == Expr::Name(d.name.clone()));
        let init_is_const = module.inits.iter().any(|a| {
            a.name == d.name
                && match &a.expr {
                    Expr::Bool(_) | Expr::Int(_) => true,
                    Expr::Name(n) => matches!(graph.classify(n), NameKind::EnumLiteral(_)),
                    _ => false,
                }
        });
        if next_is_self && init_is_const {
            out.push(Diagnostic {
                rule: rules::CONSTANT_SIGNAL,
                severity: Severity::Warning,
                line: d.line,
                name: d.name.clone(),
                message: format!(
                    "`{}` holds its constant init value forever (next({0}) := {0})",
                    d.name
                ),
                decl_index: i,
            });
        }
    }
}

fn check_observed_cones(module: &Module, graph: &DepGraph, out: &mut Vec<Diagnostic>) {
    // Per-property cones (each includes every FAIRNESS constraint: fair
    // CTL satisfaction depends on them).
    let mut fairness_atoms = Vec::new();
    for s in &module.fairness {
        if let Ok(f) = parse_formula(&s.text) {
            fairness_atoms.extend(f.signals());
        }
    }
    let spec_cones: Vec<_> = module
        .specs
        .iter()
        .filter_map(|s| parse_formula(&s.text).ok())
        .map(|f| {
            let mut atoms = f.signals();
            atoms.extend(fairness_atoms.iter().cloned());
            let seeds = graph.resolve_names(module, atoms.iter().map(String::as_str));
            graph.cone(&seeds)
        })
        .collect();

    for o in &module.observed {
        let vars = graph.resolve_names(module, [o.name.as_str()]);
        if vars.is_empty() {
            continue; // undefined-name already reported
        }
        let in_some_cone = spec_cones
            .iter()
            .any(|cone| vars.iter().any(|v| cone.contains(v)));
        if !in_some_cone {
            out.push(Diagnostic {
                rule: rules::OUT_OF_CONE,
                severity: Severity::Warning,
                line: o.line,
                name: o.name.clone(),
                message: format!(
                    "observed signal `{}` is outside every property's cone; its coverage cannot affect any verdict",
                    o.name
                ),
                decl_index: usize::MAX,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(report: &LintReport) -> Vec<(&'static str, String)> {
        report
            .diagnostics
            .iter()
            .map(|d| (d.rule, d.name.clone()))
            .collect()
    }

    #[test]
    fn clean_deck_is_clean() {
        let report = lint_source(
            r#"
VAR count : 0..3;
IVAR step : boolean;
ASSIGN
  init(count) := 0;
  next(count) := case step : (count + 1) mod 4; TRUE : count; esac;
SPEC AG (count = 3 -> AX count = 0);
OBSERVED count;
"#,
        );
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn every_rule_fires_on_its_defect() {
        let report = lint_source(
            r#"
VAR dead : boolean;
    frozen : boolean;
    nonext : boolean;
    live : boolean;
DEFINE a := b; b := a;
ASSIGN
  init(dead) := FALSE;
  next(dead) := dead | ghost;
  init(frozen) := FALSE;
  next(frozen) := frozen;
  init(nonext) := TRUE;
  init(live) := FALSE;
  next(live) := !live;
SPEC AG (live | missing);
OBSERVED live, frozen;
"#,
        );
        let got = rules_of(&report);
        assert!(got.contains(&(rules::UNDEFINED_NAME, "ghost".into())));
        assert!(got.contains(&(rules::UNDEFINED_NAME, "missing".into())));
        assert!(got.contains(&(rules::DEFINE_CYCLE, "a".into())));
        assert!(got.contains(&(rules::DEFINE_CYCLE, "b".into())));
        assert!(got.contains(&(rules::MISSING_NEXT, "nonext".into())));
        assert!(got.contains(&(rules::DEAD_VAR, "dead".into())));
        assert!(got.contains(&(rules::DEAD_VAR, "nonext".into())));
        assert!(got.contains(&(rules::CONSTANT_SIGNAL, "frozen".into())));
        // `frozen` is observed but appears in no property.
        assert!(got.contains(&(rules::OUT_OF_CONE, "frozen".into())));
        assert!(report.errors() >= 4 && report.warnings() >= 3);
    }

    #[test]
    fn diagnostics_are_stably_ordered() {
        let src = r#"
VAR z : boolean;
    a : boolean;
ASSIGN
  init(z) := FALSE;
  next(z) := z;
  init(a) := FALSE;
  next(a) := a;
SPEC AG TRUE;
"#;
        let r1 = lint_source(src);
        let r2 = lint_source(src);
        assert_eq!(r1.diagnostics, r2.diagnostics);
        // Declaration order, not alphabetical: z (index 0) before a.
        let dead: Vec<&str> = r1
            .diagnostics
            .iter()
            .filter(|d| d.rule == rules::DEAD_VAR)
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(dead, vec!["z", "a"]);
    }

    #[test]
    fn allow_pragmas_suppress() {
        let src = r#"
-- covest-lint: allow(dead-var, z)
VAR z : boolean;
    a : boolean;
ASSIGN
  init(z) := FALSE; next(z) := !z;
  init(a) := FALSE; next(a) := !a;
SPEC AG TRUE;
"#;
        let report = lint_source(src);
        let dead: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rules::DEAD_VAR)
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(dead, vec!["a"]);
        // A bare allow(rule) suppresses every instance.
        let report = lint_source(&src.replace("allow(dead-var, z)", "allow(dead-var)"));
        assert!(!report.diagnostics.iter().any(|d| d.rule == rules::DEAD_VAR));
    }

    #[test]
    fn parse_error_is_reported_with_line() {
        let report = lint_source("VAR x : ;\n");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, rules::PARSE_ERROR);
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
        assert!(report.diagnostics[0].line > 0);
    }

    #[test]
    fn bad_property_is_reported() {
        let report = lint_source(
            "VAR x : boolean;\nASSIGN init(x) := FALSE; next(x) := !x;\nSPEC EF (x & &);\nOBSERVED x;\n",
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == rules::BAD_PROPERTY));
    }
}
