//! Cone-of-influence computation and deck reduction.

use std::collections::BTreeSet;

use covest_ctl::parse_formula;
use covest_smv::{decl_bit_names, Expr, Module, ObservedDecl};

use crate::graph::DepGraph;

/// Collects every bare identifier occurring in an expression.
fn expr_names(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Bool(_) | Expr::Int(_) => {}
        Expr::Name(n) => {
            out.insert(n.clone());
        }
        Expr::Not(a) => expr_names(a, out),
        Expr::Bin(_, a, b) => {
            expr_names(a, out);
            expr_names(b, out);
        }
        Expr::Case(arms) => {
            for (g, v) in arms {
                expr_names(g, out);
                expr_names(v, out);
            }
        }
    }
}

/// The atom names of every `SPEC` and `FAIRNESS` declaration.
///
/// # Errors
///
/// Returns the CTL parser's message for the first unparseable property
/// (decks that already compiled cannot hit this).
fn property_atoms(module: &Module) -> Result<BTreeSet<String>, String> {
    let mut atoms = BTreeSet::new();
    for s in module.specs.iter().chain(module.fairness.iter()) {
        let f = parse_formula(&s.text).map_err(|e| e.to_string())?;
        atoms.extend(f.signals());
    }
    Ok(atoms)
}

/// The cone of influence of one coverage task: the variables that the
/// deck's properties, fairness constraints, and the observed `signal`
/// transitively depend on.
///
/// Every `SPEC` is seeded (a coverage task verifies the full property
/// suite), every `FAIRNESS` is seeded (fair-state computation must be a
/// cone predicate), and the task's observed signal is seeded.
///
/// # Errors
///
/// Returns the CTL parser's message for the first unparseable property.
pub fn task_cone(
    module: &Module,
    graph: &DepGraph,
    signal: &str,
) -> Result<BTreeSet<String>, String> {
    let mut atoms = property_atoms(module)?;
    atoms.insert(signal.to_owned());
    let seeds = graph.resolve_names(module, atoms.iter().map(String::as_str));
    Ok(graph.cone(&seeds))
}

/// The union cone over every property, fairness constraint, and observed
/// signal of the deck — the set of variables that can influence *any*
/// analysis of the deck. Variables outside it are dead (lint `dead-var`).
/// Unparseable properties contribute no atoms (lint reports them
/// separately as `bad-property`).
pub fn union_cone(module: &Module, graph: &DepGraph) -> BTreeSet<String> {
    let mut atoms = BTreeSet::new();
    for s in module.specs.iter().chain(module.fairness.iter()) {
        if let Ok(f) = parse_formula(&s.text) {
            atoms.extend(f.signals());
        }
    }
    for o in &module.observed {
        atoms.insert(o.name.clone());
    }
    let seeds = graph.resolve_names(module, atoms.iter().map(String::as_str));
    graph.cone(&seeds)
}

/// The `DEFINE`s reachable — through macro references — from the
/// properties, the fairness constraints, any of `signals`, or any
/// `init`/`next` expression of a cone variable, by name.
fn needed_defines(
    module: &Module,
    cone: &BTreeSet<String>,
    signals: &[String],
) -> BTreeSet<String> {
    let mut seeds = BTreeSet::new();
    for s in module.specs.iter().chain(module.fairness.iter()) {
        if let Ok(f) = parse_formula(&s.text) {
            seeds.extend(f.signals());
        }
    }
    seeds.extend(signals.iter().cloned());
    for a in module.inits.iter().chain(module.nexts.iter()) {
        if cone.contains(&a.name) {
            expr_names(&a.expr, &mut seeds);
        }
    }

    let mut needed = BTreeSet::new();
    let mut work: Vec<String> = seeds.into_iter().collect();
    while let Some(n) = work.pop() {
        if let Some(def) = module.define(&n) {
            if needed.insert(n) {
                let mut body = BTreeSet::new();
                expr_names(&def.expr, &mut body);
                work.extend(body);
            }
        }
    }
    needed
}

/// Prunes a deck to the cone of one coverage task: keeps exactly the cone
/// variables (declaration order preserved), their `init`/`next`
/// assignments, the `DEFINE`s the properties and `signal` reach, every
/// `SPEC` and `FAIRNESS`, and observes only `signal`.
///
/// Compiling the result yields a machine over exactly the cone bits, with
/// the same bit names and variable order as the full compile restricted to
/// the cone — the basis for the bit-identical-parity guarantee (see
/// DESIGN.md).
pub fn reduce_module(module: &Module, cone: &BTreeSet<String>, signal: &str) -> Module {
    reduce_module_multi(module, cone, std::slice::from_ref(&signal.to_owned()))
}

/// Prunes a deck to the union cone of a *shard* — a group of coverage
/// tasks that share one compiled machine: keeps exactly the cone
/// variables (declaration order preserved), their `init`/`next`
/// assignments, the `DEFINE`s the properties and any of `signals` reach,
/// every `SPEC` and `FAIRNESS`, and observes exactly `signals` (in the
/// order given, which shard construction keeps as declaration order).
///
/// With a single signal this is [`reduce_module`]; with several, `cone`
/// must be the union of the per-signal cones so that every signal's
/// analysis is exact on the shared machine.
pub fn reduce_module_multi(module: &Module, cone: &BTreeSet<String>, signals: &[String]) -> Module {
    let defines = needed_defines(module, cone, signals);
    let observed = signals
        .iter()
        .map(|signal| ObservedDecl {
            name: signal.clone(),
            line: module
                .observed
                .iter()
                .find(|o| &o.name == signal)
                .map_or(0, |o| o.line),
        })
        .collect();
    Module {
        vars: module
            .vars
            .iter()
            .filter(|d| cone.contains(&d.name))
            .cloned()
            .collect(),
        inits: module
            .inits
            .iter()
            .filter(|a| cone.contains(&a.name))
            .cloned()
            .collect(),
        nexts: module
            .nexts
            .iter()
            .filter(|a| cone.contains(&a.name))
            .cloned()
            .collect(),
        defines: module
            .defines
            .iter()
            .filter(|d| defines.contains(&d.name))
            .cloned()
            .collect(),
        specs: module.specs.clone(),
        fairness: module.fairness.clone(),
        observed,
    }
}

/// The state-bit names of the cone variables, in declaration order — the
/// counting/sampling universe of a cone-restricted coverage analysis and
/// the static size estimate of the task.
pub fn cone_bit_names(module: &Module, cone: &BTreeSet<String>) -> Vec<String> {
    module
        .vars
        .iter()
        .filter(|d| cone.contains(&d.name))
        .flat_map(decl_bit_names)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use covest_smv::parse_module;

    const DECK: &str = r#"
VAR count : 0..3;
    shadow : 0..3;
    flag : boolean;
IVAR step : boolean;
DEFINE full := count = 3;
       ghost := shadow = 0;
ASSIGN
  init(count) := 0;
  next(count) := case step & !full : count + 1; TRUE : count; esac;
  init(shadow) := 0;
  next(shadow) := count;
  init(flag) := FALSE;
  next(flag) := flag;
SPEC AG (full -> AX full);
OBSERVED count, shadow;
"#;

    #[test]
    fn task_cone_follows_macros_and_inputs() {
        let m = parse_module(DECK).expect("parses");
        let g = DepGraph::new(&m);
        let cone = task_cone(&m, &g, "count").unwrap();
        assert!(cone.contains("count") && cone.contains("step"));
        assert!(!cone.contains("shadow") && !cone.contains("flag"));
        // Observing `shadow` drags in `count` (its next reads it).
        let cone = task_cone(&m, &g, "shadow").unwrap();
        assert!(cone.contains("shadow") && cone.contains("count"));
        assert!(!cone.contains("flag"));
    }

    #[test]
    fn reduce_keeps_declaration_order_and_needed_defines() {
        let m = parse_module(DECK).expect("parses");
        let g = DepGraph::new(&m);
        let cone = task_cone(&m, &g, "count").unwrap();
        let r = reduce_module(&m, &cone, "count");
        let names: Vec<&str> = r.vars.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["count", "step"]);
        assert_eq!(r.defines.len(), 1);
        assert_eq!(r.defines[0].name, "full");
        assert_eq!(r.specs.len(), 1);
        assert_eq!(r.observed.len(), 1);
        assert_eq!(r.observed[0].name, "count");
        // The reduced deck still compiles.
        let bdd = covest_bdd::BddManager::new();
        covest_smv::compile_module(&bdd, &r).expect("reduced deck compiles");
    }

    #[test]
    fn reduce_keeps_defines_reached_only_through_assignments() {
        // `hidden` is referenced by next(count) but by no property — the
        // reduced deck must still carry it (regression: priority_buffer's
        // next(hi_cnt) reads DEFINE hi_deq, which no SPEC mentions).
        let deck = r#"
VAR count : 0..3;
    gate : boolean;
DEFINE hidden := gate & count < 3;
ASSIGN
  init(count) := 0;
  next(count) := case hidden : count + 1; TRUE : count; esac;
  init(gate) := TRUE;
  next(gate) := !gate;
SPEC AG (count <= 3);
OBSERVED count;
"#;
        let m = parse_module(deck).expect("parses");
        let g = DepGraph::new(&m);
        let cone = task_cone(&m, &g, "count").unwrap();
        let r = reduce_module(&m, &cone, "count");
        assert!(r.defines.iter().any(|d| d.name == "hidden"));
        let bdd = covest_bdd::BddManager::new();
        covest_smv::compile_module(&bdd, &r).expect("reduced deck compiles");
    }

    #[test]
    fn cone_bit_names_match_compiled_bit_names() {
        let m = parse_module(DECK).expect("parses");
        let g = DepGraph::new(&m);
        let cone = task_cone(&m, &g, "count").unwrap();
        let bits = cone_bit_names(&m, &cone);
        assert_eq!(bits, vec!["count.0", "count.1", "step"]);
        let r = reduce_module(&m, &cone, "count");
        let bdd = covest_bdd::BddManager::new();
        let model = covest_smv::compile_module(&bdd, &r).unwrap();
        let compiled: Vec<String> = model
            .fsm
            .state_bits()
            .iter()
            .map(|b| b.name.clone())
            .collect();
        assert_eq!(bits, compiled);
    }
}
