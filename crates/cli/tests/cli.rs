//! End-to-end tests of the `covest` command-line tool against the
//! bundled model decks.

use std::process::Command;

fn covest() -> Command {
    Command::new(env!("CARGO_BIN_EXE_covest-cli"))
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

#[test]
fn checks_counter_with_coverage() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .arg("--coverage")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("[PASS]").count(), 5, "{stdout}");
    assert!(stdout.contains("83.33"), "{stdout}");
    assert!(stdout.contains("uncovered states for `count`"), "{stdout}");
}

#[test]
fn strict_mode_fails_on_buggy_buffer() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/priority_buffer_buggy.smv"))
        .arg("--strict")
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "the buggy deck must fail strict mode"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[FAIL]"), "{stdout}");
    assert!(
        stdout.contains("counterexample") || stdout.contains("step 0"),
        "{stdout}"
    );
}

#[test]
fn fixed_buffer_passes_at_full_coverage() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/priority_buffer.smv"))
        .arg("--coverage")
        .arg("--strict")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    assert!(stdout.contains("100.00"), "{stdout}");
}

#[test]
fn pipeline_deck_uses_embedded_fairness() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/pipeline.smv"))
        .arg("--strict")
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "eventualities hold under the deck's FAIRNESS: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn image_methods_agree_on_coverage() {
    let run = |method: &str| -> String {
        let out = covest()
            .arg("check")
            .arg(repo_root().join("models/counter.smv"))
            .arg("--coverage")
            .arg("--image")
            .arg(method)
            .output()
            .expect("runs");
        assert!(out.status.success(), "--image {method} run fails");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let mono = run("mono");
    let part = run("part");
    assert!(mono.contains("image method `mono`"), "{mono}");
    assert!(part.contains("image method `part`"), "{part}");
    for stdout in [&mono, &part] {
        assert_eq!(stdout.matches("[PASS]").count(), 5, "{stdout}");
        assert!(stdout.contains("83.33"), "{stdout}");
    }
}

#[test]
fn simplify_modes_agree_on_coverage() {
    let run = |mode: &str| -> String {
        let out = covest()
            .arg("check")
            .arg(repo_root().join("models/counter.smv"))
            .arg("--coverage")
            .arg("--simplify")
            .arg(mode)
            .output()
            .expect("runs");
        assert!(out.status.success(), "--simplify {mode} run fails");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    for mode in ["off", "restrict", "constrain"] {
        let stdout = run(mode);
        assert!(stdout.contains(&format!("simplify `{mode}`")), "{stdout}");
        assert_eq!(stdout.matches("[PASS]").count(), 5, "{stdout}");
        assert!(stdout.contains("83.33"), "{stdout}");
    }
}

#[test]
fn bad_simplify_mode_is_rejected() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .arg("--simplify")
        .arg("maybe")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown simplify mode"), "{stderr}");
}

#[test]
fn bad_image_method_is_rejected() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .arg("--image")
        .arg("hybrid")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown image method"), "{stderr}");
}

/// Runs `covest check` on a deck and returns stdout.
fn check_stdout(deck: &str, extra: &[&str]) -> String {
    let out = covest()
        .arg("check")
        .arg(repo_root().join(deck))
        .args(extra)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{deck} {extra:?} run fails");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// `--jobs N` must not change a single observable byte outside the
/// table's node-count/time columns: verification lines, vacuity
/// warnings, uncovered-state listings and the table's circuit / signal /
/// #prop / %COV columns are all byte-identical to the sequential run.
#[test]
fn parallel_check_output_matches_sequential() {
    let seq = check_stdout("models/priority_buffer.smv", &["--coverage"]);
    let par = check_stdout("models/priority_buffer.smv", &["--coverage", "--jobs", "4"]);

    // Everything except table header/rows (the only lines with " - ").
    let stable = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.contains(" - "))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(stable(&seq), stable(&par), "non-table output must match");

    // Table rows: columns up to %COV (the 7th token from the right
    // starts the node/time columns) must match row by row.
    let row_keys = |s: &str| -> Vec<Vec<String>> {
        s.lines()
            .filter(|l| l.contains("ms"))
            .map(|l| {
                let tokens: Vec<&str> = l.split_whitespace().collect();
                assert!(tokens.len() >= 7, "unexpected table row: {l}");
                tokens[..tokens.len() - 6]
                    .iter()
                    .map(|t| t.to_string())
                    .collect()
            })
            .collect()
    };
    let (seq_rows, par_rows) = (row_keys(&seq), row_keys(&par));
    assert_eq!(seq_rows.len(), 2, "two signals expected:\n{seq}");
    assert_eq!(seq_rows, par_rows, "identity columns must match");
}

#[test]
fn check_json_reports_rows_and_verdicts() {
    let json_path = std::env::temp_dir().join("covest-check-test.json");
    let _ = std::fs::remove_file(&json_path);
    let stdout = check_stdout(
        "models/counter.smv",
        &["--coverage", "--json", json_path.to_str().unwrap()],
    );
    assert!(stdout.contains("wrote "), "{stdout}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"signal\": \"count\""), "{json}");
    assert!(json.contains("\"percent\": 83.33333333333333"), "{json}");
    assert!(json.contains("\"formula\": \"AG ("), "{json}");
    assert!(json.contains("\"holds\": true"), "{json}");
    assert!(json.contains("\"uncovered\": [\""), "{json}");
    let _ = std::fs::remove_file(&json_path);
}

/// Writes a joblist over every bundled deck (relative paths, exercising
/// joblist-directory resolution) and returns its path.
fn write_joblist(name: &str) -> std::path::PathBuf {
    let dir = repo_root().join("models");
    let joblist = std::env::temp_dir().join(name);
    let lines: String = [
        "# every bundled deck, by absolute path",
        "counter.smv",
        "pipeline.smv",
        "priority_buffer.smv",
        "priority_buffer_buggy.smv",
    ]
    .iter()
    .map(|l| {
        if l.starts_with('#') {
            format!("{l}\n")
        } else {
            format!("{}\n", dir.join(l).display())
        }
    })
    .collect();
    std::fs::write(&joblist, lines).expect("write joblist");
    joblist
}

/// `covest batch` output carries no timings or node counts, so two runs
/// with different thread budgets must be byte-identical — and the JSON
/// must be identical outside the `_ms` fields.
#[test]
fn batch_is_byte_identical_across_job_counts() {
    let joblist = write_joblist("covest-batch-parity.txt");
    let run = |jobs: &str, json: &std::path::Path| -> String {
        let out = covest()
            .arg("batch")
            .arg(&joblist)
            .args(["--jobs", jobs, "--json", json.to_str().unwrap()])
            .output()
            .expect("runs");
        assert!(out.status.success(), "batch --jobs {jobs} fails");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let json1 = std::env::temp_dir().join("covest-batch-1.json");
    let json4 = std::env::temp_dir().join("covest-batch-4.json");
    let out1 = run("1", &json1);
    let out4 = run("4", &json4);
    // Stdout: identical except the `wrote <path>` trailer.
    let body = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| !l.starts_with("wrote "))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        body(&out1),
        body(&out4),
        "batch stdout must not depend on --jobs"
    );
    assert!(out4.contains("batch: 4 decks, 6 signal analyses"), "{out4}");
    assert!(out4.contains("83.33% covered"), "{out4}");
    assert!(out4.contains("[FAIL]"), "the buggy deck must fail:\n{out4}");
    assert!(out4.contains("uncovered: "), "{out4}");

    // JSON: identical outside the timing fields.
    let scrub = |p: &std::path::Path| -> String {
        let mut s = std::fs::read_to_string(p).expect("json written");
        for key in ["\"verify_ms\": ", "\"coverage_ms\": "] {
            while let Some(at) = s.find(key) {
                let start = at + key.len();
                let end = start
                    + s[start..]
                        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                        .unwrap();
                s.replace_range(at..end, "");
            }
        }
        s
    };
    assert_eq!(
        scrub(&json1),
        scrub(&json4),
        "batch JSON must not depend on --jobs"
    );
    for p in [joblist, json1, json4] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn batch_strict_fails_when_any_deck_fails() {
    let joblist = write_joblist("covest-batch-strict.txt");
    let out = covest()
        .arg("batch")
        .arg(&joblist)
        .args(["--strict", "--jobs", "2"])
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "the buggy deck must fail strict batch mode"
    );
    let _ = std::fs::remove_file(joblist);
}

#[test]
fn batch_rejects_missing_deck() {
    let joblist = std::env::temp_dir().join("covest-batch-missing.txt");
    std::fs::write(&joblist, "does-not-exist.smv\n").expect("write joblist");
    let out = covest().arg("batch").arg(&joblist).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read deck"), "{stderr}");
    let _ = std::fs::remove_file(joblist);
}

#[test]
fn bad_jobs_value_is_rejected() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .args(["--jobs", "many"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs expects a thread count"), "{stderr}");
}

#[test]
fn usage_on_bad_arguments() {
    let out = covest().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_reports_error() {
    let out = covest()
        .arg("check")
        .arg("does-not-exist.smv")
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

/// The `--stats` summary above the `-- timings --` marker holds only
/// deterministic counters, so it must be byte-identical between a
/// sequential and a 4-thread run (the timings below the marker are
/// wall-clock and legitimately differ).
#[test]
fn stats_summary_is_byte_identical_across_job_counts() {
    let section = |jobs: &str| -> String {
        let stdout = check_stdout(
            "models/counter.smv",
            &["--coverage", "--stats", "--jobs", jobs],
        );
        let start = stdout.find("stats:").expect("stats section present");
        let end = stdout
            .find("-- timings --")
            .expect("timings marker present");
        assert!(start < end, "marker precedes stats:\n{stdout}");
        stdout[start..end].to_owned()
    };
    let seq = section("1");
    let par = section("4");
    assert!(seq.contains("bdd_peak_live_nodes"), "{seq}");
    assert!(seq.contains("image_calls"), "{seq}");
    assert!(seq.contains("signals count"), "{seq}");
    assert_eq!(seq, par, "stats counters must not depend on --jobs");
}

/// `--trace FILE` writes a JSONL span log covering the compile, the
/// reachability fixpoint (with per-step events), and every per-signal
/// coverage fixpoint.
#[test]
fn trace_log_covers_the_run_phases() {
    let trace = std::env::temp_dir().join("covest-trace-test.jsonl");
    let _ = std::fs::remove_file(&trace);
    let stdout = check_stdout(
        "models/counter.smv",
        &["--coverage", "--trace", trace.to_str().unwrap()],
    );
    assert!(stdout.contains("wrote "), "{stdout}");
    let log = std::fs::read_to_string(&trace).expect("trace written");
    for needle in [
        "\"name\":\"compile\"",
        "\"name\":\"reachability\"",
        "\"name\":\"bfs_step\"",
        "\"name\":\"care_install\"",
        "\"name\":\"signal:count\"",
        "\"name\":\"verify\"",
        "\"name\":\"coverage\"",
    ] {
        assert!(log.contains(needle), "missing {needle} in:\n{log}");
    }
    // Every line parses as a record with the fixed field set.
    for line in log.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for key in ["\"type\"", "\"id\"", "\"name\"", "\"start_us\""] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    let _ = std::fs::remove_file(&trace);
}

/// With `--stats --json`, the JSON document gains a `stats` object whose
/// counters match across job counts (the `*_ms` fields are wall-clock
/// and are scrubbed before comparing).
#[test]
fn json_stats_object_is_deterministic() {
    let run = |jobs: &str, path: &std::path::Path| -> String {
        check_stdout(
            "models/counter.smv",
            &[
                "--coverage",
                "--stats",
                "--jobs",
                jobs,
                "--json",
                path.to_str().unwrap(),
            ],
        );
        std::fs::read_to_string(path).expect("json written")
    };
    let p1 = std::env::temp_dir().join("covest-stats-1.json");
    let p4 = std::env::temp_dir().join("covest-stats-4.json");
    let j1 = run("1", &p1);
    let j4 = run("4", &p4);
    assert!(j1.contains("\"stats\": {"), "{j1}");
    assert!(j1.contains("\"front_end\": {"), "{j1}");
    assert!(j1.contains("\"bdd_peak_live_nodes\":"), "{j1}");
    let scrub = |s: &str| -> String {
        let mut s = s.to_owned();
        for key in [
            "\"verify_ms\": ",
            "\"coverage_ms\": ",
            "\"queue_ms\": ",
            "\"compile_ms\": ",
            "\"reach_ms\": ",
            "\"solve_ms\": ",
            "\"plan_ms\": ",
        ] {
            while let Some(at) = s.find(key) {
                let start = at + key.len();
                let end = start
                    + s[start..]
                        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                        .unwrap();
                s.replace_range(at..end, "");
            }
        }
        s
    };
    assert_eq!(
        scrub(&j1),
        scrub(&j4),
        "json stats must not depend on --jobs"
    );
    for p in [p1, p4] {
        let _ = std::fs::remove_file(p);
    }
}

/// `--trace-format chrome` streams a Chrome trace-event JSON array:
/// square-bracketed, comma-separated objects, `thread_name` metadata
/// for the worker and front-end tracks, and complete (`ph:"X"`) events
/// for the run's phases. `ui.perfetto.dev` ingests exactly this shape.
#[test]
fn chrome_trace_is_a_perfetto_loadable_array() {
    let trace = std::env::temp_dir().join("covest-trace-test-chrome.json");
    let _ = std::fs::remove_file(&trace);
    let stdout = check_stdout(
        "models/priority_buffer.smv",
        &[
            "--coverage",
            "--jobs",
            "4",
            "--trace",
            trace.to_str().unwrap(),
            "--trace-format",
            "chrome",
        ],
    );
    assert!(stdout.contains("wrote "), "{stdout}");
    let log = std::fs::read_to_string(&trace).expect("trace written");
    let body = log.trim();
    assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
    for needle in [
        "\"ph\":\"M\"",
        "\"name\":\"thread_name\"",
        "\"args\":{\"name\":\"worker 0\"}",
        "\"args\":{\"name\":\"front-end\"}",
        "\"ph\":\"X\"",
        "\"name\":\"compile\"",
        "\"name\":\"signal:hi_cnt\"",
        "\"signals\":\"hi_cnt+lo_cnt\"",
        "\"stolen\":",
        "\"mem_peak_close\":",
    ] {
        assert!(log.contains(needle), "missing {needle} in:\n{log}");
    }
    // Structural JSON-array check without a parser: every event line is
    // one object, comma-terminated except the last.
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 3, "trace has events");
    for line in &lines[1..lines.len() - 1] {
        assert!(line.starts_with('{'), "{line}");
        assert!(line.ends_with("},") || line.ends_with('}'), "{line}");
    }
    let _ = std::fs::remove_file(&trace);
}

/// `--progress` emits heartbeat lines on stderr naming the phase,
/// iteration, BDD size and support width; stdout stays byte-identical
/// to a run without the flag.
#[test]
fn progress_heartbeat_lands_on_stderr_only() {
    let deck = repo_root().join("models/priority_buffer.smv");
    let with = covest()
        .arg("check")
        .arg(&deck)
        .args(["--coverage", "--progress"])
        .output()
        .expect("runs");
    assert!(with.status.success());
    let stderr = String::from_utf8_lossy(&with.stderr);
    assert!(stderr.contains("progress["), "no heartbeat in:\n{stderr}");
    assert!(
        stderr.contains("reach iter=") && stderr.contains(" size=") && stderr.contains(" support="),
        "heartbeat lacks fixpoint gauges:\n{stderr}"
    );
    let without = covest()
        .arg("check")
        .arg(&deck)
        .arg("--coverage")
        .output()
        .expect("runs");
    // The coverage table prints wall-clock columns, so compare stdout
    // with the timing lines filtered out.
    let stable = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| !l.contains("ms"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        stable(&with.stdout),
        stable(&without.stdout),
        "--progress must not perturb stdout"
    );
}

/// `--stats` surfaces the per-phase peak-live attribution: the shard
/// table's maximum must equal the shard's `bdd_peak_live_nodes` counter
/// (the acceptance reconciliation), and the explicit peak/reorder line
/// rides along.
#[test]
fn stats_peak_table_reconciles_with_high_water_counter() {
    let stdout = check_stdout(
        "models/counter.smv",
        &["--coverage", "--stats", "--jobs", "4"],
    );
    let start = stdout.find("stats:").expect("stats section");
    let section = &stdout[start..];
    assert!(section.contains("peak-live by phase"), "{section}");
    assert!(section.contains("peak live "), "{section}");
    assert!(section.contains("  reorder "), "{section}");

    // Parse the *shard* block: its counters (including the high-water
    // mark) followed by its peak table.
    let shard_at = section.find("  shard ").expect("shard block");
    let shard = &section[shard_at..];
    let peak_counter: u64 = shard
        .lines()
        .find(|l| l.trim_start().starts_with("bdd_peak_live_nodes"))
        .and_then(|l| l.split_whitespace().last())
        .expect("bdd_peak_live_nodes line")
        .parse()
        .expect("counter parses");
    let table_at = shard.find("peak-live by phase").expect("peak table");
    let table_max = shard[table_at..]
        .lines()
        .skip(1)
        .take_while(|l| l.starts_with("      "))
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|v| v.parse::<u64>().ok())
        .max()
        .expect("table rows");
    assert_eq!(
        table_max, peak_counter,
        "peak table max must equal bdd_peak_live_nodes:\n{shard}"
    );
}
