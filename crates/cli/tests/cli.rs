//! End-to-end tests of the `covest` command-line tool against the
//! bundled model decks.

use std::process::Command;

fn covest() -> Command {
    Command::new(env!("CARGO_BIN_EXE_covest-cli"))
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

#[test]
fn checks_counter_with_coverage() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .arg("--coverage")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("[PASS]").count(), 5, "{stdout}");
    assert!(stdout.contains("83.33"), "{stdout}");
    assert!(stdout.contains("uncovered states for `count`"), "{stdout}");
}

#[test]
fn strict_mode_fails_on_buggy_buffer() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/priority_buffer_buggy.smv"))
        .arg("--strict")
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "the buggy deck must fail strict mode"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[FAIL]"), "{stdout}");
    assert!(
        stdout.contains("counterexample") || stdout.contains("step 0"),
        "{stdout}"
    );
}

#[test]
fn fixed_buffer_passes_at_full_coverage() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/priority_buffer.smv"))
        .arg("--coverage")
        .arg("--strict")
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("[FAIL]"), "{stdout}");
    assert!(stdout.contains("100.00"), "{stdout}");
}

#[test]
fn pipeline_deck_uses_embedded_fairness() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/pipeline.smv"))
        .arg("--strict")
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "eventualities hold under the deck's FAIRNESS: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn image_methods_agree_on_coverage() {
    let run = |method: &str| -> String {
        let out = covest()
            .arg("check")
            .arg(repo_root().join("models/counter.smv"))
            .arg("--coverage")
            .arg("--image")
            .arg(method)
            .output()
            .expect("runs");
        assert!(out.status.success(), "--image {method} run fails");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let mono = run("mono");
    let part = run("part");
    assert!(mono.contains("image method `mono`"), "{mono}");
    assert!(part.contains("image method `part`"), "{part}");
    for stdout in [&mono, &part] {
        assert_eq!(stdout.matches("[PASS]").count(), 5, "{stdout}");
        assert!(stdout.contains("83.33"), "{stdout}");
    }
}

#[test]
fn simplify_modes_agree_on_coverage() {
    let run = |mode: &str| -> String {
        let out = covest()
            .arg("check")
            .arg(repo_root().join("models/counter.smv"))
            .arg("--coverage")
            .arg("--simplify")
            .arg(mode)
            .output()
            .expect("runs");
        assert!(out.status.success(), "--simplify {mode} run fails");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    for mode in ["off", "restrict", "constrain"] {
        let stdout = run(mode);
        assert!(stdout.contains(&format!("simplify `{mode}`")), "{stdout}");
        assert_eq!(stdout.matches("[PASS]").count(), 5, "{stdout}");
        assert!(stdout.contains("83.33"), "{stdout}");
    }
}

#[test]
fn bad_simplify_mode_is_rejected() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .arg("--simplify")
        .arg("maybe")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown simplify mode"), "{stderr}");
}

#[test]
fn bad_image_method_is_rejected() {
    let out = covest()
        .arg("check")
        .arg(repo_root().join("models/counter.smv"))
        .arg("--image")
        .arg("hybrid")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown image method"), "{stderr}");
}

#[test]
fn usage_on_bad_arguments() {
    let out = covest().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_reports_error() {
    let out = covest()
        .arg("check")
        .arg("does-not-exist.smv")
        .output()
        .expect("runs");
    assert!(!out.status.success());
}
