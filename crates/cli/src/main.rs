//! `covest` — check an SMV-dialect model deck and estimate property
//! coverage, reproducing the workflow of the DAC'99 paper.
//!
//! ```text
//! covest check MODEL.smv [--coverage] [--observed SIGNAL]...
//!                        [--traces N] [--strict] [--dot FILE]
//!                        [--reorder off|sift|auto] [--image mono|part]
//!                        [--simplify off|restrict|constrain]
//! ```
//!
//! - verifies every `SPEC` under the deck's `FAIRNESS` constraints;
//! - with `--coverage`, estimates coverage for each `OBSERVED` signal
//!   (or the `--observed` overrides) and lists uncovered states;
//! - with `--traces N`, prints shortest input sequences to up to `N`
//!   uncovered states per signal;
//! - `--strict` exits nonzero if any property fails;
//! - `--dot FILE` dumps the reachable-state BDD in Graphviz format;
//! - `--reorder` controls dynamic variable reordering: `off` disables it,
//!   `sift` runs one sifting pass right after the model compiles, and
//!   `auto` instead re-sifts automatically whenever the node count
//!   crosses the growth threshold during compilation, verification and
//!   coverage estimation;
//! - `--image` selects how images/preimages are computed: `part`
//!   (default) sweeps the clustered transition relation with early
//!   quantification and never builds the monolithic relation, `mono`
//!   conjoins the full relation and uses the two-operand product;
//! - `--simplify` selects the don't-care simplification discipline:
//!   `restrict` (default) shrinks BFS frontiers, fixpoint iterates and —
//!   once the reachable states are known — the transition clusters with
//!   the size-safe Coudert–Madre restrict, `constrain` uses the stronger
//!   generalized cofactor (which may grow BDDs), `off` disables
//!   simplification. All three produce bit-identical results.

use std::process::ExitCode;

use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_core::{CoverageEstimator, CoverageOptions, CoverageTable, ReportRow};
use covest_mc::{ModelChecker, Verdict};
use covest_smv::{ImageConfig, ImageMethod, SimplifyConfig};

struct Args {
    model_path: String,
    coverage: bool,
    observed: Vec<String>,
    traces: usize,
    strict: bool,
    dot: Option<String>,
    reorder: ReorderMode,
    image: ImageMethod,
    simplify: SimplifyConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: covest check MODEL.smv [--coverage] [--observed SIGNAL]... \
         [--traces N] [--strict] [--dot FILE] [--reorder off|sift|auto] \
         [--image mono|part] [--simplify off|restrict|constrain]\n\
         \n\
         --reorder off   keep the declaration variable order\n\
         --reorder sift  sift once after compiling the model (default)\n\
         --reorder auto  re-sift whenever the BDD grows past the threshold\n\
         --image part    clustered transition relation with early\n\
         \u{20}               quantification; the monolith is never built (default)\n\
         --image mono    monolithic transition relation\n\
         --simplify restrict   size-safe don't-care simplification of\n\
         \u{20}                    frontiers, iterates and clusters (default)\n\
         --simplify constrain  stronger generalized-cofactor simplification\n\
         --simplify off        no don't-care simplification"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("check") => {}
        _ => usage(),
    }
    let mut args = Args {
        model_path: String::new(),
        coverage: false,
        observed: Vec::new(),
        traces: 0,
        strict: false,
        dot: None,
        reorder: ReorderMode::Sift,
        image: ImageMethod::Partitioned,
        simplify: SimplifyConfig::Restrict,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--coverage" => args.coverage = true,
            "--strict" => args.strict = true,
            "--reorder" => match argv.next() {
                Some(m) => match m.parse() {
                    Ok(mode) => args.reorder = mode,
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage()
                    }
                },
                None => usage(),
            },
            "--image" => match argv.next() {
                Some(m) => match m.parse() {
                    Ok(method) => args.image = method,
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage()
                    }
                },
                None => usage(),
            },
            "--simplify" => match argv.next() {
                Some(m) => match m.parse() {
                    Ok(mode) => args.simplify = mode,
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage()
                    }
                },
                None => usage(),
            },
            "--observed" => match argv.next() {
                Some(s) => args.observed.push(s),
                None => usage(),
            },
            "--traces" => match argv.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.traces = n,
                None => usage(),
            },
            "--dot" => match argv.next() {
                Some(p) => args.dot = Some(p),
                None => usage(),
            },
            _ if args.model_path.is_empty() && !a.starts_with('-') => {
                args.model_path = a;
            }
            _ => usage(),
        }
    }
    if args.model_path.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(all_passed) => {
            if args.strict && !all_passed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<bool, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(&args.model_path)?;
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: args.reorder,
        ..Default::default()
    });
    let image = ImageConfig {
        method: args.image,
        simplify: args.simplify,
        ..Default::default()
    };
    let model = covest_smv::compile_with(&bdd, &src, image)?;
    // In mono mode nothing was clustered — the engine holds the raw
    // parts and the fixpoints run on the lazy monolith.
    let partition = match args.image {
        ImageMethod::Partitioned => {
            format!("{} clusters", model.fsm.image_engine().clusters().len())
        }
        ImageMethod::Monolithic => format!("{} parts", model.fsm.trans_parts().len()),
    };
    println!(
        "model `{}`: {} state bits, {} properties, {} fairness constraints, \
         image method `{}` ({partition}), simplify `{}`",
        args.model_path,
        model.fsm.num_state_bits(),
        model.specs.len(),
        model.fairness.len(),
        args.image,
        args.simplify,
    );
    // In auto mode the manager already sifts at its own checkpoints
    // (including one at the end of compile), so the explicit startup pass
    // belongs to sift mode only.
    if args.reorder == ReorderMode::Sift {
        let stats = bdd.reduce_heap();
        println!(
            "reorder (sift): {} -> {} live nodes ({} swaps)",
            stats.before, stats.after, stats.swaps
        );
    }

    // Verification.
    let mut all_passed = true;
    let mut mc = ModelChecker::new(&model.fsm);
    for fair in &model.fairness {
        mc.add_fairness(fair)?;
    }
    // With simplification on, pay for reachability up front: the
    // reachable set becomes the care boundary for the verification
    // fixpoints (and the estimator recomputes/reinstalls it per run).
    if args.simplify != SimplifyConfig::Off {
        let reach = model.fsm.install_reachable_care();
        mc.set_care(reach);
    }
    for spec in &model.specs {
        let verdict = mc.check(&spec.clone().into())?;
        let mark = if verdict.holds() { "PASS" } else { "FAIL" };
        println!("[{mark}] SPEC {spec}");
        if let Verdict::Fails {
            counterexample: Some(trace),
            ..
        } = &verdict
        {
            println!("{trace}");
        }
        all_passed &= verdict.holds();
    }

    // Coverage.
    if args.coverage {
        let signals: Vec<String> = if args.observed.is_empty() {
            model.observed.clone()
        } else {
            args.observed.clone()
        };
        if signals.is_empty() {
            eprintln!("warning: no OBSERVED signals; use --observed");
        }
        let estimator = CoverageEstimator::new(&model.fsm);
        let options = CoverageOptions {
            fairness: model.fairness.clone(),
            ..Default::default()
        };
        let mut table = CoverageTable::new();
        for signal in &signals {
            let analysis = estimator.analyze(signal, &model.specs, &options)?;
            table.push(ReportRow::from_analysis(&args.model_path, &analysis));
            for vac in analysis.vacuous_properties() {
                println!("warning: SPEC {vac} passes vacuously (an implication never triggers)");
            }
            if analysis.percent() < 100.0 {
                println!("\nuncovered states for `{signal}`:");
                for state in estimator.uncovered_states(&analysis, 10) {
                    let rendered: Vec<String> = state
                        .iter()
                        .map(|(name, v)| format!("{name}={}", u8::from(*v)))
                        .collect();
                    println!("  {}", rendered.join(" "));
                }
                for trace in estimator.traces_to_uncovered(&analysis, args.traces) {
                    println!("trace to uncovered state:\n{trace}");
                }
            }
        }
        println!("\n{table}");
    }

    if let Some(path) = &args.dot {
        let reach = model.fsm.reachable();
        std::fs::write(path, bdd.to_dot(&[("reachable", &reach)]))?;
        println!("wrote {path}");
    }

    Ok(all_passed)
}
