//! `covest` — check SMV-dialect model decks and estimate property
//! coverage, reproducing (and parallelizing) the workflow of the DAC'99
//! paper.
//!
//! ```text
//! covest check MODEL.smv [--coverage] [--observed SIGNAL]...
//!                        [--traces N] [--strict] [--dot FILE]
//!                        [--reorder off|sift|auto] [--image mono|part]
//!                        [--simplify off|restrict|constrain]
//!                        [--coi on|off] [--jobs N] [--json FILE]
//! covest batch JOBLIST   [--strict] [--reorder ...] [--image ...]
//!                        [--simplify ...] [--coi on|off] [--jobs N]
//!                        [--json FILE]
//! covest lint DECK.smv... [--strict]
//! ```
//!
//! `check` verifies every `SPEC` under the deck's `FAIRNESS` constraints
//! and, with `--coverage`, estimates coverage for each `OBSERVED` signal
//! (or the `--observed` overrides) and lists uncovered states:
//!
//! - `--traces N` prints shortest input sequences to up to `N` uncovered
//!   states per signal;
//! - `--strict` exits nonzero if any property fails;
//! - `--dot FILE` dumps the reachable-state BDD in Graphviz format;
//! - `--reorder`, `--image`, `--simplify` select the engine modes (all
//!   combinations produce bit-identical results; see `README.md`);
//! - `--coi on|off` (default on) controls whether parallel workers
//!   compile each signal's statically pruned cone-of-influence deck or
//!   the full deck; reports are bit-identical either way — the coverage
//!   universe is the signal's cone in both modes;
//! - `--jobs N` analyzes the observed signals **in parallel** on `N`
//!   worker threads (`0` = one per core), each with its own BDD manager;
//!   coverage percentages, verdicts and uncovered states are
//!   bit-identical to the sequential run (node counts and timings in the
//!   table legitimately differ — per-shard managers vs one shared one);
//! - `--json FILE` additionally writes the coverage table — rows plus
//!   per-property verdicts and the canonical uncovered-state sample — as
//!   machine-readable JSON;
//! - `--stats` prints an engine-counter summary (unique-table and memo
//!   hit rates, fixpoint iterations, image calls, per-shard phase times)
//!   after the run; counter values are deterministic — byte-identical
//!   across `--jobs` values — while everything below the `-- timings --`
//!   line is wall-clock and excluded from any parity contract;
//! - `--trace FILE` writes the recorded span/event log (compile,
//!   reachability with per-BFS-step sizes, care install, each per-signal
//!   analysis). The file **streams**: each shard's span forest is
//!   written as its result arrives, one track per pool worker, so a
//!   long batch holds at most one shard's records in memory; the
//!   front-end's own track (tid 0) is appended at the end;
//! - `--trace-format jsonl|chrome` selects the trace flavor: native
//!   JSONL (default; one record per line, `tid` = track), or Chrome
//!   trace-event JSON — load the file in `ui.perfetto.dev` to see one
//!   timeline row per worker, shard spans tagged with their signals and
//!   stolen flag, memory gauges in the args panel;
//! - `--progress` prints a throttled heartbeat to stderr while the
//!   fixpoints run (phase, iteration, BDD size, support width, live
//!   nodes) and arms a watchdog that reports any fixpoint whose iterate
//!   has stopped changing (same size and support for many iterations)
//!   together with a snapshot of the open spans.
//!
//! With `--stats`/`--trace`, coverage always routes through the worker
//! pool (even at `--jobs 1`): per-shard fresh managers make every
//! shard's counters a pure function of (deck source, config), which is
//! what makes the summary's counter section parity-checkable. The
//! summary also carries each shard's **peak-live-by-phase** table — the
//! fold of the memory samples stamped on every span open/close and BFS
//! step — whose maximum reconciles exactly with the shard's
//! `bdd_peak_live_nodes` counter.
//!
//! `batch` runs a *fleet* of decks: `JOBLIST` names one deck per line
//! (`PATH [SIGNAL ...]`, `#` comments; relative paths resolve against
//! the joblist's directory), and all decks × signals drain through one
//! worker pool under the `--jobs` thread budget. Batch output contains
//! no timings or node counts, so two runs with different `--jobs` are
//! byte-identical.
//!
//! `lint` statically checks decks without building any BDDs: undefined
//! names, `DEFINE` cycles, missing `next` assignments, dead variables,
//! constant signals, observed signals outside every property's cone.
//! Findings print in a stable order (declaration order, then line);
//! `--strict` fails on warnings too. Exit codes: 0 clean, 1 findings,
//! 2 usage/I-O error.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use covest_analyze::{cone_bit_names, lint_source, task_cone, DepGraph};
use covest_bdd::{BddManager, ReorderConfig, ReorderMode};
use covest_core::{json_string, CoverageEstimator, CoverageOptions, CoverageTable, ReportRow};
use covest_mc::{ModelChecker, Verdict};
use covest_par::{run_batch, run_batch_with_trace, BatchReport, DeckJob, ParConfig, ShardProfile};
use covest_smv::{ImageConfig, ImageMethod, SimplifyConfig};
use covest_telemetry::chrome::{TraceFormat, TraceSink, TraceWriter};
use covest_telemetry::{
    self as telemetry, memory, progress, Counters, SpanRecord, Telemetry, WallClock, TIMINGS_MARKER,
};

/// Flags shared by `check` and `batch`.
struct EngineArgs {
    reorder: ReorderMode,
    image: ImageMethod,
    simplify: SimplifyConfig,
    jobs: usize,
    json: Option<String>,
    stats: bool,
    trace: Option<String>,
    trace_format: TraceFormat,
    progress: bool,
    coi: bool,
}

impl Default for EngineArgs {
    fn default() -> Self {
        EngineArgs {
            reorder: ReorderMode::Sift,
            image: ImageMethod::Partitioned,
            simplify: SimplifyConfig::Restrict,
            jobs: 1,
            json: None,
            stats: false,
            trace: None,
            trace_format: TraceFormat::Jsonl,
            progress: false,
            coi: true,
        }
    }
}

impl EngineArgs {
    /// `true` when either observability flag asks for a recorder — and
    /// therefore for per-shard profiling and pooled coverage.
    fn profiling(&self) -> bool {
        self.stats || self.trace.is_some()
    }
}

struct CheckArgs {
    model_path: String,
    coverage: bool,
    observed: Vec<String>,
    traces: usize,
    strict: bool,
    dot: Option<String>,
    engine: EngineArgs,
}

struct BatchArgs {
    joblist: String,
    strict: bool,
    engine: EngineArgs,
}

struct LintArgs {
    paths: Vec<String>,
    strict: bool,
}

enum Cmd {
    Check(CheckArgs),
    Batch(BatchArgs),
    Lint(LintArgs),
}

fn usage() -> ! {
    eprintln!(
        "usage: covest check MODEL.smv [--coverage] [--observed SIGNAL]... \
         [--traces N] [--strict] [--dot FILE] [--reorder off|sift|auto] \
         [--image mono|part] [--simplify off|restrict|constrain] \
         [--coi on|off] [--jobs N] [--json FILE] [--stats] [--trace FILE] \
         [--trace-format jsonl|chrome] [--progress]\n\
         \u{20}      covest batch JOBLIST [--strict] [--reorder off|sift|auto] \
         [--image mono|part] [--simplify off|restrict|constrain] \
         [--coi on|off] [--jobs N] [--json FILE] [--stats] [--trace FILE] \
         [--trace-format jsonl|chrome] [--progress]\n\
         \u{20}      covest lint DECK.smv... [--strict]\n\
         \n\
         --reorder off   keep the declaration variable order\n\
         --reorder sift  sift once after compiling the model (default)\n\
         --reorder auto  re-sift whenever the BDD grows past the threshold\n\
         --image part    clustered transition relation with early\n\
         \u{20}               quantification; the monolith is never built (default)\n\
         --image mono    monolithic transition relation\n\
         --simplify restrict   size-safe don't-care simplification of\n\
         \u{20}                    frontiers, iterates and clusters (default)\n\
         --simplify constrain  stronger generalized-cofactor simplification\n\
         --simplify off        no don't-care simplification\n\
         --coi on        parallel workers compile each signal's statically\n\
         \u{20}               pruned cone deck (default; reports are\n\
         \u{20}               bit-identical to --coi off)\n\
         --coi off       workers compile the full deck and project onto\n\
         \u{20}               the cone afterwards\n\
         --jobs N        analyze observed signals on N worker threads\n\
         \u{20}               (0 = one per core; default 1 = sequential)\n\
         --json FILE     write the coverage table (rows, verdicts,\n\
         \u{20}               uncovered sample) as JSON\n\
         --stats         print the engine-counter summary (deterministic\n\
         \u{20}               counters above `-- timings --`, wall-clock below)\n\
         --trace FILE    write the span/event log (compile, reachability,\n\
         \u{20}               per-signal fixpoints), streamed per shard\n\
         --trace-format jsonl|chrome   trace flavor: native JSONL\n\
         \u{20}               (default) or Chrome trace-event JSON for\n\
         \u{20}               ui.perfetto.dev (`perfetto` is an alias)\n\
         --progress      print a throttled fixpoint heartbeat to stderr\n\
         \u{20}               and flag stalled fixpoints (watchdog)\n\
         \n\
         JOBLIST lines: PATH [SIGNAL ...]   (# comments; relative paths\n\
         resolve against the joblist's directory)\n\
         \n\
         lint exit codes: 0 = clean (warnings allowed without --strict),\n\
         \u{20}                1 = errors, or warnings under --strict,\n\
         \u{20}                2 = usage or I/O error"
    );
    std::process::exit(2);
}

/// Parses a flag shared by both subcommands; returns `false` if the flag
/// is not an engine flag.
fn parse_engine_flag(
    engine: &mut EngineArgs,
    flag: &str,
    argv: &mut impl Iterator<Item = String>,
) -> bool {
    fn parsed<T: std::str::FromStr>(value: Option<String>) -> T
    where
        T::Err: std::fmt::Display,
    {
        match value.map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(e)) => {
                eprintln!("error: {e}");
                usage()
            }
            None => usage(),
        }
    }
    match flag {
        "--reorder" => engine.reorder = parsed(argv.next()),
        "--image" => engine.image = parsed(argv.next()),
        "--simplify" => engine.simplify = parsed(argv.next()),
        "--jobs" => match argv.next().and_then(|n| n.parse().ok()) {
            Some(n) => engine.jobs = n,
            None => {
                eprintln!("error: --jobs expects a thread count (0 = one per core)");
                usage()
            }
        },
        "--json" => match argv.next() {
            Some(p) => engine.json = Some(p),
            None => usage(),
        },
        "--coi" => match argv.next().as_deref() {
            Some("on") => engine.coi = true,
            Some("off") => engine.coi = false,
            _ => {
                eprintln!("error: --coi expects `on` or `off`");
                usage()
            }
        },
        "--stats" => engine.stats = true,
        "--trace" => match argv.next() {
            Some(p) => engine.trace = Some(p),
            None => usage(),
        },
        "--trace-format" => engine.trace_format = parsed(argv.next()),
        "--progress" => engine.progress = true,
        _ => return false,
    }
    true
}

fn parse_args() -> Cmd {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("check") => {
            let mut args = CheckArgs {
                model_path: String::new(),
                coverage: false,
                observed: Vec::new(),
                traces: 0,
                strict: false,
                dot: None,
                engine: EngineArgs::default(),
            };
            while let Some(a) = argv.next() {
                if parse_engine_flag(&mut args.engine, a.as_str(), &mut argv) {
                    continue;
                }
                match a.as_str() {
                    "--coverage" => args.coverage = true,
                    "--strict" => args.strict = true,
                    "--observed" => match argv.next() {
                        Some(s) => args.observed.push(s),
                        None => usage(),
                    },
                    "--traces" => match argv.next().and_then(|n| n.parse().ok()) {
                        Some(n) => args.traces = n,
                        None => usage(),
                    },
                    "--dot" => match argv.next() {
                        Some(p) => args.dot = Some(p),
                        None => usage(),
                    },
                    _ if args.model_path.is_empty() && !a.starts_with('-') => {
                        args.model_path = a;
                    }
                    _ => usage(),
                }
            }
            if args.model_path.is_empty() {
                usage();
            }
            Cmd::Check(args)
        }
        Some("batch") => {
            let mut args = BatchArgs {
                joblist: String::new(),
                strict: false,
                engine: EngineArgs::default(),
            };
            while let Some(a) = argv.next() {
                if parse_engine_flag(&mut args.engine, a.as_str(), &mut argv) {
                    continue;
                }
                match a.as_str() {
                    "--strict" => args.strict = true,
                    _ if args.joblist.is_empty() && !a.starts_with('-') => {
                        args.joblist = a;
                    }
                    _ => usage(),
                }
            }
            if args.joblist.is_empty() {
                usage();
            }
            Cmd::Batch(args)
        }
        Some("lint") => {
            let mut paths = Vec::new();
            let mut strict = false;
            for a in argv {
                match a.as_str() {
                    "--strict" => strict = true,
                    _ if !a.starts_with('-') => paths.push(a),
                    _ => usage(),
                }
            }
            if paths.is_empty() {
                usage();
            }
            Cmd::Lint(LintArgs { paths, strict })
        }
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let (result, strict) = match parse_args() {
        Cmd::Check(args) => (run_check(&args), args.strict),
        Cmd::Batch(args) => (run_batch_cmd(&args), args.strict),
        Cmd::Lint(args) => return run_lint(&args),
    };
    match result {
        Ok(all_passed) => {
            if strict && !all_passed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `covest lint`: statically checks decks and prints findings in the
/// stable order (declaration order, then line). Exit code 0 when clean
/// (warnings allowed without `--strict`), 1 on errors or on warnings
/// under `--strict`, 2 on usage or I/O problems.
fn run_lint(args: &LintArgs) -> ExitCode {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for path in &args.paths {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let report = lint_source(&src);
        for d in &report.diagnostics {
            println!(
                "{path}:{}: {} [{}] {}",
                d.line, d.severity, d.rule, d.message
            );
        }
        errors += report.errors();
        warnings += report.warnings();
    }
    println!(
        "lint: {} decks, {errors} errors, {warnings} warnings",
        args.paths.len()
    );
    if errors > 0 || (args.strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints the per-signal coverage block exactly as the sequential path
/// always did: vacuity warnings, then — below 100% — the canonical
/// uncovered-state listing. Shared by the sequential and `--jobs` paths,
/// so their output is byte-identical by construction.
fn print_signal_block(row: &ReportRow) {
    for v in &row.verdicts {
        if v.vacuous {
            println!(
                "warning: SPEC {} passes vacuously (an implication never triggers)",
                v.formula
            );
        }
    }
    if row.percent < 100.0 {
        println!("\nuncovered states for `{}`:", row.signal);
        for state in &row.uncovered_sample {
            println!("  {}", ReportRow::render_state(state));
        }
    }
}

/// How many uncovered states each report samples. One constant feeds
/// both the sequential path and the worker pool's `uncovered_limit`:
/// the `--jobs` byte-parity contract depends on the two paths agreeing.
const UNCOVERED_SAMPLE_LIMIT: usize = 10;

fn par_config(engine: &EngineArgs) -> ParConfig {
    ParConfig {
        jobs: engine.jobs,
        image: ImageConfig {
            method: engine.image,
            simplify: engine.simplify,
            ..Default::default()
        },
        reorder: engine.reorder,
        uncovered_limit: UNCOVERED_SAMPLE_LIMIT,
        profile: engine.profiling(),
        progress: engine.progress,
        clock: None,
        coi: engine.coi,
    }
}

/// Opens the streaming `--trace` writer over a buffered file, in the
/// selected `--trace-format`. Shard tracks stream into it as the pool
/// produces results; the front-end's own records land on tid 0 at the
/// end (see [`finish_trace`]).
fn open_trace(
    engine: &EngineArgs,
) -> Result<Option<TraceWriter<std::io::BufWriter<std::fs::File>>>, std::io::Error> {
    match &engine.trace {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            Ok(Some(TraceWriter::new(
                std::io::BufWriter::new(file),
                engine.trace_format,
            )))
        }
        None => {
            if engine.trace_format != TraceFormat::Jsonl {
                eprintln!("warning: --trace-format has no effect without --trace");
            }
            Ok(None)
        }
    }
}

/// Appends the front-end record forest as track 0 and closes the trace
/// file (surfacing any I/O error deferred during streaming).
fn finish_trace(
    engine: &EngineArgs,
    writer: Option<TraceWriter<std::io::BufWriter<std::fs::File>>>,
    records: &[SpanRecord],
) -> Result<(), std::io::Error> {
    if let Some(mut writer) = writer {
        if !records.is_empty() {
            writer.write_track(0, "front-end", records);
        }
        writer.finish()?;
        if let Some(path) = &engine.trace {
            println!("wrote {path}");
        }
    }
    Ok(())
}

/// Installs the front-end memory sampler: every span open/close and
/// event recorded on this thread is stamped with `mgr`'s live-node /
/// arena-byte / high-water gauges. The caller owns the recorder's
/// lifecycle; the sampler is cleared in [`collect_observability`].
fn install_front_sampler(mgr: &BddManager) {
    let gauges = mgr.clone();
    memory::set_mem_sampler(move || {
        let (live, bytes, peak) = gauges.mem_gauges();
        memory::MemSample {
            live_nodes: live as u64,
            arena_bytes: bytes as u64,
            peak_live_nodes: peak,
        }
    });
}

/// Writes the coverage table as JSON, splicing the `stats` object in as
/// a sibling of `rows` when observability was collected.
fn write_json(
    engine: &EngineArgs,
    table: &CoverageTable,
    stats: Option<&str>,
) -> Result<(), std::io::Error> {
    if let Some(path) = &engine.json {
        let mut doc = table.to_json();
        if let Some(stats) = stats {
            let body = doc.strip_suffix("\n}\n").expect("table JSON shape");
            doc = format!("{body},\n  \"stats\": {stats}\n}}\n");
        }
        std::fs::write(path, doc)?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Everything the observability flags produce in one place: the summary
/// text (deterministic counters above [`TIMINGS_MARKER`], wall-clock
/// below), the `--json` `stats` object, and the front-end's own span
/// forest (shard forests stream straight to the trace sink).
struct StatsOutput {
    text: String,
    json: String,
    records: Vec<SpanRecord>,
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn counters_json(c: &Counters) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in c.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {value}", json_string(name));
    }
    out.push('}');
    out
}

fn profile_label(p: &ShardProfile) -> String {
    if p.signals.is_empty() {
        format!("shard {} (verify)", p.deck)
    } else {
        format!("shard {} signals {}", p.deck, p.signals.join("+"))
    }
}

/// Uninstalls the recorder installed for `--stats`/`--trace` (plus the
/// front-end memory sampler and progress channel) and folds its output
/// together with the per-shard profiles of `report` (when the run went
/// through the worker pool) and the front-end manager's engine counters
/// (when one survives the run, i.e. `check`).
///
/// The counter sections — the front-end counters and every per-shard
/// counter set — are deterministic: byte-identical across `--jobs`
/// values and across identical runs. Every `*_ms` value, the stolen
/// markers, the scheduler line, and everything below the
/// [`TIMINGS_MARKER`] line is wall-clock/scheduling observability.
fn collect_observability(
    engine: &EngineArgs,
    front_mgr: Option<&BddManager>,
    report: Option<&BatchReport>,
) -> Option<StatsOutput> {
    if !engine.profiling() {
        return None;
    }
    memory::clear_mem_sampler();
    progress::uninstall_progress();
    let rec = telemetry::uninstall().unwrap_or_default();
    let (records, mut front) = rec.into_parts();
    if let Some(mgr) = front_mgr {
        for (name, value) in mgr.stats().pairs() {
            front.add(name, value);
        }
    }
    let front_peak = memory::peak_by_phase(&records);
    let profiles: Vec<&ShardProfile> = report
        .iter()
        .flat_map(|r| r.decks.iter())
        .flat_map(|d| d.profiles.iter())
        .collect();
    // The fleet-wide attribution table: per phase, the largest peak any
    // shard saw there. Its maximum is the largest per-shard manager
    // high-water mark (each shard's own table reconciles exactly with
    // that shard's `bdd_peak_live_nodes`).
    let mut merged_peak = Counters::new();
    for p in &profiles {
        for (phase, value) in p.peak_by_phase.iter() {
            merged_peak.set_max(phase, value);
        }
    }

    let mut text = String::from("stats:\n  front-end\n");
    text.push_str(&front.render("    "));
    if !front_peak.is_empty() {
        text.push_str("    peak-live by phase\n");
        text.push_str(&front_peak.render("      "));
    }
    for p in &profiles {
        let _ = writeln!(text, "  {}", profile_label(p));
        text.push_str(&p.counters.render("    "));
        let (before, after) = p.reorder_sizes();
        let _ = writeln!(
            text,
            "    peak live {} nodes  reorder {before} -> {after} nodes",
            p.peak_live_nodes()
        );
        if !p.peak_by_phase.is_empty() {
            text.push_str("    peak-live by phase\n");
            text.push_str(&p.peak_by_phase.render("      "));
        }
    }
    if !merged_peak.is_empty() {
        text.push_str("  peak-live by phase (max across shards)\n");
        text.push_str(&merged_peak.render("    "));
    }
    let _ = writeln!(text, "{TIMINGS_MARKER}");
    for deck in report.iter().flat_map(|r| r.decks.iter()) {
        let _ = writeln!(text, "  plan {}  {} ms", deck.name, fmt_ms(deck.plan_time));
    }
    for p in &profiles {
        let _ = writeln!(
            text,
            "  {}  queue {} ms  compile {} ms  reach {} ms  solve {} ms{}",
            profile_label(p),
            fmt_ms(p.queue_wait),
            fmt_ms(p.compile),
            fmt_ms(p.reach),
            fmt_ms(p.solve),
            if p.stolen { "  (stolen)" } else { "" },
        );
    }
    if let Some(rep) = report {
        let _ = writeln!(
            text,
            "  sched  workers {}  shards {}  steals {}",
            rep.sched.workers, rep.sched.shards, rep.sched.steals
        );
    }

    // The `stats` JSON object: deterministic fields first, `*_ms` last.
    let mut json = String::from("{\"front_end\": ");
    json.push_str(&counters_json(&front));
    if !front_peak.is_empty() {
        let _ = write!(
            json,
            ", \"front_end_peak_by_phase\": {}",
            counters_json(&front_peak)
        );
    }
    json.push_str(", \"shards\": [");
    for (i, p) in profiles.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let signals: Vec<String> = p.signals.iter().map(|s| json_string(s)).collect();
        let _ = write!(
            json,
            "{{\"deck\": {}, \"signals\": [{}], \"counters\": {}, \
             \"peak_live_nodes\": {}, \"peak_by_phase\": {}, \
             \"queue_ms\": {}, \"compile_ms\": {}, \"reach_ms\": {}, \"solve_ms\": {}, \
             \"stolen\": {}}}",
            json_string(&p.deck),
            signals.join(", "),
            counters_json(&p.counters),
            p.peak_live_nodes(),
            counters_json(&p.peak_by_phase),
            fmt_ms(p.queue_wait),
            fmt_ms(p.compile),
            fmt_ms(p.reach),
            fmt_ms(p.solve),
            p.stolen,
        );
    }
    json.push(']');
    if !merged_peak.is_empty() {
        let _ = write!(json, ", \"peak_by_phase\": {}", counters_json(&merged_peak));
    }
    if let Some(rep) = report {
        let plan_ms: f64 = rep
            .decks
            .iter()
            .map(|d| d.plan_time.as_secs_f64() * 1e3)
            .sum();
        let _ = write!(json, ", \"plan_ms\": {plan_ms:.3}");
    }
    json.push('}');

    Some(StatsOutput {
        text,
        json,
        records,
    })
}

/// Prints the `--stats` summary (the trace file streams separately; see
/// [`finish_trace`]).
fn emit_observability(engine: &EngineArgs, out: &StatsOutput) {
    if engine.stats {
        print!("\n{}", out.text);
    }
}

fn run_check(args: &CheckArgs) -> Result<bool, Box<dyn std::error::Error>> {
    let src = std::fs::read_to_string(&args.model_path)?;
    // The recorder goes in before compile so the span log covers the
    // front-end compile, reachability, and verification phases.
    if args.engine.profiling() {
        telemetry::install(Telemetry::new());
    }
    // The heartbeat/watchdog channel covers the front-end fixpoints
    // (reachability, verification EU/EG) on this thread; pool workers
    // install their own per-shard channels.
    if args.engine.progress {
        progress::install_progress(progress::Progress::stderr(
            std::sync::Arc::new(WallClock::new()),
            args.model_path.clone(),
        ));
    }
    let mut trace_writer = open_trace(&args.engine)?;
    let bdd = BddManager::new();
    bdd.set_reorder_config(ReorderConfig {
        mode: args.engine.reorder,
        ..Default::default()
    });
    // Memory timeline: stamp every front-end span/event with this
    // manager's gauges (workers sample their own per-shard managers).
    if args.engine.profiling() {
        install_front_sampler(&bdd);
    }
    let image = ImageConfig {
        method: args.engine.image,
        simplify: args.engine.simplify,
        ..Default::default()
    };
    let module = covest_smv::parse_module(&src)?;
    let model = covest_smv::compile_module_with(&bdd, &module, image)?;
    // In mono mode nothing was clustered — the engine holds the raw
    // parts and the fixpoints run on the lazy monolith.
    let partition = match args.engine.image {
        ImageMethod::Partitioned => {
            format!("{} clusters", model.fsm.image_engine().clusters().len())
        }
        ImageMethod::Monolithic => format!("{} parts", model.fsm.trans_parts().len()),
    };
    println!(
        "model `{}`: {} state bits, {} properties, {} fairness constraints, \
         image method `{}` ({partition}), simplify `{}`",
        args.model_path,
        model.fsm.num_state_bits(),
        model.specs.len(),
        model.fairness.len(),
        args.engine.image,
        args.engine.simplify,
    );
    // In auto mode the manager already sifts at its own checkpoints
    // (including one at the end of compile), so the explicit startup pass
    // belongs to sift mode only.
    if args.engine.reorder == ReorderMode::Sift {
        let stats = bdd.reduce_heap();
        println!(
            "reorder (sift): {} -> {} live nodes ({} swaps)",
            stats.before, stats.after, stats.swaps
        );
    }

    // The JSON report is the coverage table; without --coverage there is
    // no table and the flag would silently write nothing.
    if args.engine.json.is_some() && !args.coverage {
        eprintln!("warning: --json has no effect without --coverage");
    }

    // Verification.
    let mut all_passed = true;
    let mut mc = ModelChecker::new(&model.fsm);
    for fair in &model.fairness {
        mc.add_fairness(fair)?;
    }
    // With simplification on, pay for reachability up front: the
    // reachable set becomes the care boundary for the verification
    // fixpoints (and the estimator recomputes/reinstalls it per run).
    if args.engine.simplify != SimplifyConfig::Off {
        let reach = model.fsm.install_reachable_care();
        mc.set_care(reach);
    }
    for spec in &model.specs {
        let verdict = mc.check(&spec.clone().into())?;
        let mark = if verdict.holds() { "PASS" } else { "FAIL" };
        println!("[{mark}] SPEC {spec}");
        if let Verdict::Fails {
            counterexample: Some(trace),
            ..
        } = &verdict
        {
            println!("{trace}");
        }
        all_passed &= verdict.holds();
    }

    // Coverage: sequentially on this manager, or sharded across the
    // worker pool with `--jobs N` — cone-disjoint signal groups each
    // compile one private manager, and idle workers steal whole shards.
    // Same output either way (the table's node counts honestly reflect
    // per-shard managers in the parallel case).
    let mut table_out: Option<CoverageTable> = None;
    let mut pool_report: Option<BatchReport> = None;
    if args.coverage {
        let signals: Vec<String> = if args.observed.is_empty() {
            model.observed.clone()
        } else {
            args.observed.clone()
        };
        if signals.is_empty() {
            eprintln!("warning: no OBSERVED signals; use --observed");
        }
        let estimator = CoverageEstimator::new(&model.fsm);
        let graph = DepGraph::new(&module);
        let mut table = CoverageTable::new();
        // Profiling routes coverage through the worker pool at every
        // `--jobs` value: per-shard fresh managers make each shard's
        // counters a pure function of (deck source, config), so the
        // summary's counter section is `--jobs`-independent — stealing
        // included.
        let sequential = signals.is_empty()
            || (!args.engine.profiling() && (args.engine.jobs == 1 || signals.len() <= 1));
        if sequential {
            // The counting/sampling universe of a deck analysis is the
            // signal's static cone — the same universe the worker pool
            // uses, so sequential and `--jobs` output stay byte-identical.
            for signal in &signals {
                let cone = task_cone(&module, &graph, signal)?;
                let options = CoverageOptions {
                    fairness: model.fairness.clone(),
                    cone: Some(cone_bit_names(&module, &cone)),
                    ..Default::default()
                };
                let analysis = estimator.analyze(signal, &model.specs, &options)?;
                let universe = estimator.universe(options.cone.as_deref());
                let sample = estimator.sample_states_over(
                    &analysis.uncovered(),
                    &universe,
                    UNCOVERED_SAMPLE_LIMIT,
                );
                let row = ReportRow::from_analysis(&args.model_path, &analysis)
                    .with_uncovered_sample(sample);
                print_signal_block(&row);
                if row.percent < 100.0 {
                    for trace in estimator.traces_to_states_over(
                        &analysis.uncovered(),
                        &universe,
                        args.traces,
                    ) {
                        println!("trace to uncovered state:\n{trace}");
                    }
                }
                table.push(row);
            }
        } else {
            let jobs = vec![DeckJob {
                name: args.model_path.clone(),
                source: src.clone(),
                observed: args.observed.clone(),
            }];
            let config = par_config(&args.engine);
            let report = match trace_writer.as_mut() {
                Some(writer) => run_batch_with_trace(&jobs, &config, writer)?,
                None => run_batch(&jobs, &config)?,
            };
            for outcome in report.outcomes() {
                print_signal_block(&outcome.row);
                if outcome.row.percent < 100.0 && args.traces > 0 {
                    // The worker exported its uncovered set name-keyed
                    // over the signal's cone; import it here and replay
                    // traces over the same cone universe.
                    let uncovered = bdd.import_bdd(&outcome.uncovered)?;
                    let cone = task_cone(&module, &graph, &outcome.row.signal)?;
                    let universe = estimator.universe(Some(&cone_bit_names(&module, &cone)));
                    for trace in estimator.traces_to_states_over(&uncovered, &universe, args.traces)
                    {
                        println!("trace to uncovered state:\n{trace}");
                    }
                }
                table.push(outcome.row.clone());
            }
            pool_report = Some(report);
        }
        println!("\n{table}");
        table_out = Some(table);
    }

    if let Some(path) = &args.dot {
        let reach = model.fsm.reachable();
        std::fs::write(path, bdd.to_dot(&[("reachable", &reach)]))?;
        println!("wrote {path}");
    }

    let stats_out = collect_observability(&args.engine, Some(&bdd), pool_report.as_ref());
    finish_trace(
        &args.engine,
        trace_writer,
        stats_out.as_ref().map_or(&[][..], |s| &s.records),
    )?;
    if let Some(table) = &table_out {
        write_json(
            &args.engine,
            table,
            stats_out.as_ref().map(|s| s.json.as_str()),
        )?;
    }
    if let Some(out) = &stats_out {
        emit_observability(&args.engine, out);
    }

    Ok(all_passed)
}

/// Parses a joblist: one deck per line — `PATH [SIGNAL ...]` — with `#`
/// comments; relative paths resolve against the joblist's directory.
fn parse_joblist(path: &str) -> Result<Vec<DeckJob>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let base = std::path::Path::new(path)
        .parent()
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let deck = fields.next().expect("nonempty line has a first field");
        let deck_path = {
            let p = std::path::Path::new(deck);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                base.join(p)
            }
        };
        let source = std::fs::read_to_string(&deck_path).map_err(|e| {
            format!(
                "{path}:{}: cannot read deck `{}`: {e}",
                lineno + 1,
                deck_path.display()
            )
        })?;
        jobs.push(DeckJob {
            name: deck.to_owned(),
            source,
            observed: fields.map(str::to_owned).collect(),
        });
    }
    if jobs.is_empty() {
        return Err(format!("joblist `{path}` lists no decks").into());
    }
    Ok(jobs)
}

fn run_batch_cmd(args: &BatchArgs) -> Result<bool, Box<dyn std::error::Error>> {
    // Planning runs on this thread inside `run_batch`, so the recorder
    // captures the plan-phase compile and reachability spans.
    if args.engine.profiling() {
        telemetry::install(Telemetry::new());
    }
    let mut trace_writer = open_trace(&args.engine)?;
    let jobs = parse_joblist(&args.joblist)?;
    let config = par_config(&args.engine);
    let report = match trace_writer.as_mut() {
        Some(writer) => run_batch_with_trace(&jobs, &config, writer)?,
        None => run_batch(&jobs, &config)?,
    };

    // Every line below is deterministic (no timings, no node counts, no
    // thread counts), so batch output is byte-identical across `--jobs`.
    println!(
        "batch: {} decks, {} signal analyses",
        report.decks.len(),
        report.outcomes().count(),
    );
    let mut held = 0usize;
    let mut total = 0usize;
    for deck in &report.decks {
        println!("deck {}: {} properties", deck.name, deck.num_properties);
        for v in &deck.verdicts {
            let mark = if v.holds { "PASS" } else { "FAIL" };
            println!("  [{mark}] SPEC {}", v.formula);
            held += usize::from(v.holds);
            total += 1;
        }
        for outcome in &deck.signals {
            let row = &outcome.row;
            for v in &row.verdicts {
                if v.vacuous {
                    println!(
                        "  warning: SPEC {} passes vacuously for `{}`",
                        v.formula, row.signal
                    );
                }
            }
            println!(
                "  signal {}: {:.2}% covered ({} of {} states)",
                row.signal, row.percent, row.covered_states, row.space_states
            );
            for state in row.uncovered_sample.iter().take(5) {
                println!("    uncovered: {}", ReportRow::render_state(state));
            }
        }
    }
    println!(
        "batch: {held}/{total} properties hold across {} decks, {} signals analyzed",
        report.decks.len(),
        report.outcomes().count(),
    );
    let stats_out = collect_observability(&args.engine, None, Some(&report));
    finish_trace(
        &args.engine,
        trace_writer,
        stats_out.as_ref().map_or(&[][..], |s| &s.records),
    )?;
    write_json(
        &args.engine,
        &report.table(),
        stats_out.as_ref().map(|s| s.json.as_str()),
    )?;
    if let Some(out) = &stats_out {
        emit_observability(&args.engine, out);
    }
    Ok(report.all_hold())
}
