//! # covest-telemetry
//!
//! The workspace's observability layer: deterministic **counters**, a
//! named **span/event** tree, and clock-injected timing — zero external
//! dependencies, always cheap, and a strict no-op when no recorder is
//! installed.
//!
//! The design splits observability into two kinds of data with two
//! different contracts:
//!
//! - **Counters** are *deterministic*: plain `u64` tallies (cache hits,
//!   fixpoint iterations, image calls) that are a pure function of the
//!   work performed. Counter output is byte-parity-checked across runs
//!   and across `--jobs` values, exactly like the rest of the engine's
//!   deterministic output.
//! - **Timings** are *wall-clock*: span durations and `Stopwatch`
//!   measurements. They are excluded from every parity check, the same
//!   rule the CLI applies to its `*_ms` JSON fields. In rendered
//!   summaries they appear strictly below the [`TIMINGS_MARKER`] line so
//!   tests can compare everything above it mechanically.
//!
//! Timestamps are injected through the [`Clock`] trait: production code
//! uses the [`Instant`]-backed [`WallClock`], tests drive a
//! [`ManualClock`] to get fully deterministic span logs. This crate is
//! the **only** crate in the workspace (besides the bench harness)
//! allowed to touch `Instant::now()` — CI greps for violations.
//!
//! Instrumented library code never holds a recorder: it calls the free
//! functions [`span`], [`event`], and [`count`], which record into a
//! thread-local [`Telemetry`] recorder installed by the driver
//! ([`install`] / [`uninstall`]). Without a recorder they cost one
//! thread-local read. A recorder is plain owned data, so a worker thread
//! can install one per task and ship the finished recorder back to the
//! coordinator as part of the task result.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use covest_telemetry::{self as telemetry, ManualClock, Telemetry};
//!
//! let clock = Arc::new(ManualClock::new());
//! telemetry::install(Telemetry::with_clock(clock.clone()));
//! {
//!     let _compile = telemetry::span("compile");
//!     clock.advance(Duration::from_micros(250));
//!     telemetry::count("image_calls", 3);
//! }
//! let rec = telemetry::uninstall().expect("recorder installed");
//! assert_eq!(rec.counters().get("image_calls"), 3);
//! assert!(rec.to_text().contains("\"name\":\"compile\""));
//! ```

pub mod chrome;
pub mod memory;
pub mod progress;

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The line separating deterministic counter output (above) from
/// wall-clock timing output (below) in rendered summaries. Parity tests
/// compare everything above this marker byte-for-byte and ignore
/// everything below it — the same contract as the CLI's `*_ms` JSON
/// fields.
pub const TIMINGS_MARKER: &str = "-- timings --";

// ---------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------

/// A monotonic time source, expressed as the [`Duration`] since the
/// clock's own epoch. Injected into [`Telemetry`] so tests can record
/// spans under a deterministic clock.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// The production clock: [`Instant`]-backed, epoch = construction time.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic test clock: time only moves when [`ManualClock::advance`]
/// is called. Microsecond resolution (the resolution of the JSONL log).
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A manual clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `d` (truncated to whole microseconds).
    pub fn advance(&self, d: Duration) {
        self.micros
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::Relaxed))
    }
}

/// A plain wall-clock duration measurement — the workspace-wide
/// replacement for ad-hoc `Instant::now()` pairs. Timing measured this
/// way is *non-deterministic by definition* and must stay in
/// timing-suffixed fields excluded from parity checks.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// Deterministic named tallies: an insertion-ordered list of
/// `(name, u64)` pairs.
///
/// Counter values are a pure function of the work performed — never of
/// the clock, the scheduler, or the thread count — so two identical runs
/// produce byte-identical counter output. The insertion-ordered `Vec`
/// keeps rendering deterministic too (no hash-map iteration order) and
/// is cheaper than a map at the few dozen names the engine uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(String, u64)>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to `name`, creating it at the end of the order if
    /// new.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => self.entries.push((name.to_owned(), delta)),
        }
    }

    /// Raises `name` to at least `value` (for high-water marks, which
    /// must not be summed).
    pub fn set_max(&mut self, name: &str, value: u64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = (*v).max(value),
            None => self.entries.push((name.to_owned(), value)),
        }
    }

    /// The value of `name` (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// `true` if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Sums `other` into `self` (every name added; use only when a sum
    /// is meaningful — high-water marks should go through
    /// [`Counters::set_max`]).
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }

    /// Renders the counters as aligned `name  value` lines, each
    /// prefixed by `indent` — the deterministic half of the summary
    /// table.
    pub fn render(&self, indent: &str) -> String {
        let width = self.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in self.iter() {
            let _ = writeln!(out, "{indent}{name:<width$}  {value}");
        }
        out
    }
}

// ---------------------------------------------------------------------
// Spans and events
// ---------------------------------------------------------------------

/// Whether a record is a phase with extent or an instantaneous event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A named phase with a start and (once closed) an end.
    Span,
    /// An instantaneous observation (e.g. one BFS step).
    Event,
}

/// One node of the recorded span tree.
///
/// Records live in a flat `Vec` with parent *indices*, so a finished
/// forest is plain `Send` data: worker threads ship their task-local
/// trees back to the coordinator, which grafts them into one log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span or event.
    pub kind: RecordKind,
    /// Phase name (e.g. `compile`, `reachability`, `signal:grant`).
    pub name: String,
    /// Index of the enclosing span within the same record list, if any.
    pub parent: Option<usize>,
    /// Clock reading at open (spans) or at the instant (events).
    pub start: Duration,
    /// Clock reading at close; `None` for events and unclosed spans.
    pub end: Option<Duration>,
    /// Deterministic numeric payload (iteration counts, node counts, …)
    /// in attachment order.
    pub fields: Vec<(String, u64)>,
    /// Deterministic string payload (signal lists, modes, …) in
    /// attachment order. Rendered alongside [`SpanRecord::fields`] in
    /// every serialization.
    pub labels: Vec<(String, String)>,
}

/// Serializes a record forest as JSONL: one JSON object per record, in
/// record order, with `id`/`parent` indices preserving the tree shape.
/// Durations are reported in whole microseconds.
pub fn records_to_text(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for (id, r) in records.iter().enumerate() {
        write_record_json(&mut out, r, id, r.parent, None);
    }
    out
}

/// Writes one record as a JSONL line. `id`/`parent` are passed
/// explicitly so streaming writers can rebase indices when
/// concatenating several forests into one file; `tid` (when given)
/// tags the line with its track (pool worker) index.
pub(crate) fn write_record_json(
    out: &mut String,
    r: &SpanRecord,
    id: usize,
    parent: Option<usize>,
    tid: Option<u64>,
) {
    let kind = match r.kind {
        RecordKind::Span => "span",
        RecordKind::Event => "event",
    };
    let _ = write!(
        out,
        "{{\"type\":\"{kind}\",\"id\":{id},\"parent\":{},\"name\":\"{}\",\"start_us\":{}",
        parent.map_or("null".to_owned(), |p| p.to_string()),
        escape_json(&r.name),
        r.start.as_micros(),
    );
    if r.kind == RecordKind::Span {
        let _ = write!(
            out,
            ",\"end_us\":{}",
            r.end
                .map_or("null".to_owned(), |e| e.as_micros().to_string())
        );
    }
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    if !r.fields.is_empty() || !r.labels.is_empty() {
        out.push_str(",\"fields\":{");
        let mut first = true;
        for (name, value) in &r.fields {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{value}", escape_json(name));
        }
        for (name, value) in &r.labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(name), escape_json(value));
        }
        out.push('}');
    }
    out.push_str("}\n");
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------

/// An in-memory telemetry recorder: a span/event tree plus a
/// [`Counters`] accumulator, stamped by an injected [`Clock`].
///
/// Instrumented code does not see this type — it records through the
/// thread-local free functions ([`span`], [`event`], [`count`]) after a
/// driver [`install`]s the recorder on the current thread. A finished
/// recorder is plain data: [`Telemetry::into_parts`] hands the span
/// forest and counters to whoever merges or serializes them.
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    records: Vec<SpanRecord>,
    /// Indices of currently open spans, innermost last.
    open: Vec<usize>,
    counters: Counters,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("records", &self.records.len())
            .field("open", &self.open)
            .field("counters", &self.counters)
            .finish()
    }
}

impl Telemetry {
    /// A recorder on the production [`WallClock`].
    pub fn new() -> Self {
        Telemetry::with_clock(Arc::new(WallClock::new()))
    }

    /// A recorder on an injected clock (tests use [`ManualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Telemetry {
            clock,
            records: Vec::new(),
            open: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// The recorded forest, in record order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// The accumulated deterministic counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Decomposes the recorder into its span forest and counters.
    pub fn into_parts(self) -> (Vec<SpanRecord>, Counters) {
        (self.records, self.counters)
    }

    /// The JSONL serialization of the recorded forest (see
    /// [`records_to_text`]).
    pub fn to_text(&self) -> String {
        records_to_text(&self.records)
    }

    fn open_span(&mut self, name: String, sample: Option<memory::MemSample>) -> usize {
        let idx = self.records.len();
        self.records.push(SpanRecord {
            kind: RecordKind::Span,
            name,
            parent: self.open.last().copied(),
            start: self.clock.now(),
            end: None,
            fields: sample.map(memory::open_fields).unwrap_or_default(),
            labels: Vec::new(),
        });
        self.open.push(idx);
        idx
    }

    fn close_span(&mut self, idx: usize, sample: Option<memory::MemSample>) {
        let now = self.clock.now();
        if let Some(s) = sample {
            self.records[idx].fields.extend(memory::close_fields(s));
        }
        self.records[idx].end = Some(now);
        self.open.retain(|&i| i != idx);
    }

    fn push_event(
        &mut self,
        name: String,
        fields: &[(&str, u64)],
        sample: Option<memory::MemSample>,
    ) {
        let mut fields: Vec<(String, u64)> =
            fields.iter().map(|&(n, v)| (n.to_owned(), v)).collect();
        if let Some(s) = sample {
            fields.extend(memory::open_fields(s));
        }
        self.records.push(SpanRecord {
            kind: RecordKind::Event,
            name,
            parent: self.open.last().copied(),
            start: self.clock.now(),
            end: None,
            fields,
            labels: Vec::new(),
        });
    }

    fn attach_field(&mut self, name: &str, value: u64) {
        if let Some(&idx) = self.open.last() {
            self.records[idx].fields.push((name.to_owned(), value));
        }
    }

    fn attach_label(&mut self, name: &str, value: &str) {
        if let Some(&idx) = self.open.last() {
            self.records[idx]
                .labels
                .push((name.to_owned(), value.to_owned()));
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}

/// Installs `recorder` as the current thread's telemetry sink. Replaces
/// (and drops) any previously installed recorder.
pub fn install(recorder: Telemetry) {
    CURRENT.with(|c| *c.borrow_mut() = Some(recorder));
}

/// Removes and returns the current thread's recorder, if any. The free
/// functions no-op again afterwards.
pub fn uninstall() -> Option<Telemetry> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// `true` if a recorder is installed on this thread. Instrumentation
/// whose *inputs* are expensive to compute (e.g. node counts for a BFS
/// event) should check this first; plain [`count`] calls need not.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Opens a named span on the current thread's recorder. The returned
/// guard closes the span when dropped; without a recorder it is a
/// no-op. Spans nest by scope: records opened while the guard lives are
/// its children.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !is_active() {
        return SpanGuard { idx: None };
    }
    // Sampled before the recorder borrow: the sampler closes over the
    // driver's `BddManager` and must stay free to re-enter telemetry.
    let sample = memory::sample();
    let idx = CURRENT.with(|c| {
        c.borrow_mut()
            .as_mut()
            .map(|rec| rec.open_span(name.into(), sample))
    });
    SpanGuard { idx }
}

/// Records an instantaneous event with deterministic numeric fields
/// under the innermost open span. No-op without a recorder.
pub fn event(name: impl Into<String>, fields: &[(&str, u64)]) {
    if !is_active() {
        return;
    }
    let sample = memory::sample();
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.push_event(name.into(), fields, sample);
        }
    });
}

/// Adds `delta` to the named deterministic counter. No-op without a
/// recorder.
pub fn count(name: &str, delta: u64) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.counters.add(name, delta);
        }
    });
}

/// Attaches a deterministic numeric field to the innermost open span
/// (e.g. a fixpoint's final iteration count). No-op without a recorder
/// or outside any span.
pub fn span_field(name: &str, value: u64) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.attach_field(name, value);
        }
    });
}

/// Attaches a deterministic string label to the innermost open span
/// (e.g. the signal list a shard multiplexes). No-op without a recorder
/// or outside any span.
pub fn span_label(name: &str, value: &str) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.attach_label(name, value);
        }
    });
}

/// The names of the currently open spans joined by `/` (outermost
/// first) — the "where are we" context the progress heartbeat prints.
/// Empty without a recorder or outside any span.
pub fn open_span_path() -> String {
    CURRENT.with(|c| {
        c.borrow().as_ref().map_or_else(String::new, |rec| {
            let names: Vec<&str> = rec
                .open
                .iter()
                .map(|&i| rec.records[i].name.as_str())
                .collect();
            names.join("/")
        })
    })
}

/// A snapshot of the currently open spans — `(name, start)` outermost
/// first — for watchdog diagnostics. Empty without a recorder.
pub fn open_span_snapshot() -> Vec<(String, Duration)> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map_or_else(Vec::new, |rec| {
            rec.open
                .iter()
                .map(|&i| (rec.records[i].name.clone(), rec.records[i].start))
                .collect()
        })
    })
}

/// Closes its span on drop. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    idx: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(idx) = self.idx {
            let sample = memory::sample();
            CURRENT.with(|c| {
                if let Some(rec) = c.borrow_mut().as_mut() {
                    rec.close_span(idx, sample);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Arc<ManualClock>, ()) {
        let clock = Arc::new(ManualClock::new());
        install(Telemetry::with_clock(clock.clone()));
        (clock, ())
    }

    #[test]
    fn spans_nest_and_stamp_deterministically() {
        let (clock, ()) = manual();
        {
            let _outer = span("outer");
            clock.advance(Duration::from_micros(10));
            {
                let _inner = span("inner");
                clock.advance(Duration::from_micros(5));
                span_field("iterations", 3);
            }
            clock.advance(Duration::from_micros(1));
        }
        let rec = uninstall().expect("installed");
        let records = rec.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "outer");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[0].start, Duration::from_micros(0));
        assert_eq!(records[0].end, Some(Duration::from_micros(16)));
        assert_eq!(records[1].name, "inner");
        assert_eq!(records[1].parent, Some(0));
        assert_eq!(records[1].start, Duration::from_micros(10));
        assert_eq!(records[1].end, Some(Duration::from_micros(15)));
        assert_eq!(records[1].fields, vec![("iterations".to_owned(), 3)]);
    }

    #[test]
    fn events_attach_to_open_span() {
        let (clock, ()) = manual();
        {
            let _bfs = span("reachability");
            clock.advance(Duration::from_micros(2));
            event("bfs_step", &[("frontier_nodes", 7), ("visited_nodes", 9)]);
        }
        let rec = uninstall().expect("installed");
        let ev = &rec.records()[1];
        assert_eq!(ev.kind, RecordKind::Event);
        assert_eq!(ev.parent, Some(0));
        assert_eq!(ev.start, Duration::from_micros(2));
        assert_eq!(ev.end, None);
        assert_eq!(ev.fields[0], ("frontier_nodes".to_owned(), 7));
    }

    #[test]
    fn jsonl_round_trips_shape() {
        let (_clock, ()) = manual();
        {
            let _s = span("compile");
            event("note \"quoted\"", &[("n", 1)]);
        }
        let rec = uninstall().expect("installed");
        let text = rec.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"span\",\"id\":0,\"parent\":null,\"name\":\"compile\",\
             \"start_us\":0,\"end_us\":0}"
        );
        assert!(lines[1].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[1].contains("\"fields\":{\"n\":1}"));
    }

    #[test]
    fn counters_sum_max_and_render_in_insertion_order() {
        let mut c = Counters::new();
        c.add("b_second", 2);
        c.add("a_first", 1);
        c.add("b_second", 3);
        c.set_max("peak", 10);
        c.set_max("peak", 7);
        assert_eq!(c.get("b_second"), 5);
        assert_eq!(c.get("peak"), 10);
        assert_eq!(c.get("absent"), 0);
        let mut other = Counters::new();
        other.add("a_first", 9);
        other.add("c_new", 1);
        c.merge(&other);
        assert_eq!(c.get("a_first"), 10);
        let rendered = c.render("  ");
        let names: Vec<&str> = rendered
            .lines()
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert_eq!(names, ["b_second", "a_first", "peak", "c_new"]);
    }

    #[test]
    fn free_functions_no_op_without_recorder() {
        assert!(uninstall().is_none());
        assert!(!is_active());
        let _s = span("ignored");
        event("ignored", &[]);
        count("ignored", 1);
        span_field("ignored", 1);
        assert!(uninstall().is_none());
    }

    #[test]
    fn stopwatch_measures_something_nonnegative() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
