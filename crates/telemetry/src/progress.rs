//! The progress + watchdog channel: a throttled stderr heartbeat for
//! long symbolic fixpoints, and a stall detector for the hangs dynamic
//! reordering (and future frontier exchange) can cause.
//!
//! Fixpoint loops — reachability BFS, `EU`/`EG` iteration — call
//! [`fixpoint_progress`] once per iteration, guarded by
//! [`progress_active`] so the node/support counts it reports are only
//! computed when someone is watching. A [`Progress`] channel installed
//! on the thread then:
//!
//! - emits a heartbeat line (`progress[label]: path/phase iter=…
//!   size=… live=…`) at most once per throttle interval, measured on
//!   the injected [`Clock`] so tests drive the throttle with a
//!   [`ManualClock`](crate::ManualClock);
//! - watches the iterate's `(size, support)` signature and, once it
//!   has not changed for `stall_after` consecutive iterations, flags
//!   the fixpoint **once**: a `watchdog:` line plus a diagnostic
//!   snapshot of the open span stack on the sink, and a
//!   `watchdog_stall` event in the telemetry record stream.
//!
//! An unchanged signature is how a *stuck* fixpoint looks from outside
//! (the iterate may still be semantically moving — the watchdog flags,
//! it does not kill), and it is exactly the signature a reordering-
//! thrashed or livelocked run exhibits.
//!
//! This module is the only place in the engine crates allowed to write
//! progress output to stderr — a devlint rule keeps stray `eprintln!`
//! out of library code.

use std::cell::RefCell;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use crate::{memory, open_span_path, open_span_snapshot, Clock};

/// Default heartbeat throttle: at most one line per interval.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(500);
/// Default watchdog patience, in consecutive unchanged iterations.
pub const DEFAULT_STALL_AFTER: u64 = 64;

/// A per-thread progress channel. Install with [`install_progress`];
/// fixpoint loops feed it through [`fixpoint_progress`].
pub struct Progress {
    clock: Arc<dyn Clock>,
    interval: Duration,
    stall_after: u64,
    label: String,
    sink: Box<dyn std::io::Write + Send>,
    last_emit: Option<Duration>,
    watch: Option<Watch>,
}

/// The watchdog's view of the current fixpoint.
struct Watch {
    phase: String,
    size: u64,
    support: u64,
    /// Consecutive iterations with an unchanged `(size, support)`.
    stale: u64,
    /// Whether this plateau has already been reported.
    flagged: bool,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("label", &self.label)
            .field("interval", &self.interval)
            .field("stall_after", &self.stall_after)
            .finish()
    }
}

impl Progress {
    /// A channel writing to `sink`, throttled on `clock`. `label` tags
    /// every line (the shard or driver name); `stall_after` is the
    /// watchdog patience in iterations.
    pub fn new(
        clock: Arc<dyn Clock>,
        interval: Duration,
        stall_after: u64,
        label: impl Into<String>,
        sink: Box<dyn std::io::Write + Send>,
    ) -> Self {
        Progress {
            clock,
            interval,
            stall_after: stall_after.max(1),
            label: label.into(),
            sink,
            last_emit: None,
            watch: None,
        }
    }

    /// The production channel: stderr, default throttle and patience.
    pub fn stderr(clock: Arc<dyn Clock>, label: impl Into<String>) -> Self {
        Progress::new(
            clock,
            DEFAULT_INTERVAL,
            DEFAULT_STALL_AFTER,
            label,
            Box::new(std::io::stderr()),
        )
    }
}

thread_local! {
    static PROGRESS: RefCell<Option<Progress>> = const { RefCell::new(None) };
}

/// Installs `channel` as the current thread's progress sink. Replaces
/// any previously installed channel.
pub fn install_progress(channel: Progress) {
    PROGRESS.with(|p| *p.borrow_mut() = Some(channel));
}

/// Removes and returns the current thread's progress channel, if any.
pub fn uninstall_progress() -> Option<Progress> {
    PROGRESS.with(|p| p.borrow_mut().take())
}

/// `true` if a progress channel is installed on this thread. Fixpoint
/// loops check this before computing the (non-free) node and support
/// counts an iteration report needs.
pub fn progress_active() -> bool {
    PROGRESS.with(|p| p.borrow().is_some())
}

/// Reports one fixpoint iteration: `phase` is the loop's name (`reach`,
/// `eu`, `eg`, `eg_fair`), `size` the iterate's BDD node count and
/// `support` its support width. Heartbeats are throttled; the watchdog
/// fires once per plateau. No-op without an installed channel.
pub fn fixpoint_progress(phase: &str, iteration: u64, size: u64, support: u64) {
    // The span path, stack snapshot and memory sample all touch *other*
    // thread-locals, so they are gathered before borrowing PROGRESS.
    let path = open_span_path();
    let live = memory::sample().map(|s| s.live_nodes);
    let stalled = PROGRESS.with(|p| {
        let mut slot = p.borrow_mut();
        let pr = slot.as_mut()?;
        let stale = match &mut pr.watch {
            Some(w) if w.phase == phase && w.size == size && w.support == support => {
                w.stale += 1;
                w.stale
            }
            w => {
                *w = Some(Watch {
                    phase: phase.to_owned(),
                    size,
                    support,
                    stale: 0,
                    flagged: false,
                });
                0
            }
        };
        let watch = pr.watch.as_mut().expect("watch just set");
        let fire = stale >= pr.stall_after && !watch.flagged;
        if fire {
            watch.flagged = true;
        }

        let now = pr.clock.now();
        let due = pr
            .last_emit
            .is_none_or(|at| now.saturating_sub(at) >= pr.interval);
        if due {
            pr.last_emit = Some(now);
            let where_ = if path.is_empty() {
                phase.to_owned()
            } else {
                format!("{path}/{phase}")
            };
            let live = live.map_or(String::new(), |l| format!(" live={l}"));
            let _ = writeln!(
                pr.sink,
                "progress[{}]: {where_} iter={iteration} size={size} support={support}{live}",
                pr.label
            );
        }
        fire.then_some(stale)
    });

    if let Some(stale) = stalled {
        report_stall(phase, iteration, size, support, stale);
    }
}

/// Emits the watchdog diagnostic: the stall line plus an open-span
/// snapshot on the progress sink, and a `watchdog_stall` event into
/// the telemetry record stream.
fn report_stall(phase: &str, iteration: u64, size: u64, support: u64, stale: u64) {
    // The event goes first: event() samples memory and borrows the
    // recorder, neither of which may happen under the PROGRESS borrow.
    crate::event(
        "watchdog_stall",
        &[
            ("iteration", iteration),
            ("size", size),
            ("support", support),
            ("stale", stale),
        ],
    );
    let snapshot = open_span_snapshot();
    PROGRESS.with(|p| {
        let mut slot = p.borrow_mut();
        let Some(pr) = slot.as_mut() else { return };
        let _ = writeln!(
            pr.sink,
            "watchdog[{}]: fixpoint `{phase}` iterate unchanged (size={size}, \
             support={support}) for {stale} consecutive iterations at iter={iteration}",
            pr.label
        );
        for (name, start) in &snapshot {
            let _ = writeln!(
                pr.sink,
                "watchdog[{}]:   open span `{name}` since {}us",
                pr.label,
                start.as_micros()
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, span, uninstall, ManualClock, Telemetry};
    use std::sync::Mutex;

    /// A cloneable in-memory sink the tests can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn channel(interval: Duration, stall_after: u64) -> (Arc<ManualClock>, SharedBuf) {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        install_progress(Progress::new(
            clock.clone(),
            interval,
            stall_after,
            "test",
            Box::new(buf.clone()),
        ));
        (clock, buf)
    }

    #[test]
    fn heartbeat_throttles_on_the_injected_clock() {
        let (clock, buf) = channel(Duration::from_micros(100), u64::MAX);
        fixpoint_progress("reach", 1, 10, 4); // first tick always emits
        fixpoint_progress("reach", 2, 11, 4); // throttled
        clock.advance(Duration::from_micros(99));
        fixpoint_progress("reach", 3, 12, 4); // still throttled
        clock.advance(Duration::from_micros(1));
        fixpoint_progress("reach", 4, 13, 4); // due again
        uninstall_progress().expect("installed");
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            2,
            "throttle must swallow ticks 2 and 3: {text}"
        );
        assert_eq!(lines[0], "progress[test]: reach iter=1 size=10 support=4");
        assert_eq!(lines[1], "progress[test]: reach iter=4 size=13 support=4");
    }

    #[test]
    fn heartbeat_reports_span_context_and_live_nodes() {
        let (_clock, buf) = channel(Duration::ZERO, u64::MAX);
        install(Telemetry::new());
        memory::set_mem_sampler(|| memory::MemSample {
            live_nodes: 42,
            arena_bytes: 0,
            peak_live_nodes: 42,
        });
        {
            let _s = span("signal:ack");
            fixpoint_progress("eu", 7, 3, 2);
        }
        memory::clear_mem_sampler();
        uninstall().expect("recorder");
        uninstall_progress().expect("installed");
        assert!(
            buf.text()
                .contains("progress[test]: signal:ack/eu iter=7 size=3 support=2 live=42"),
            "got: {}",
            buf.text()
        );
    }

    #[test]
    fn watchdog_flags_a_plateau_once_and_records_the_event() {
        let (_clock, buf) = channel(Duration::from_secs(3600), 3);
        install(Telemetry::new());
        {
            let _s = span("reachability");
            for i in 0..10 {
                fixpoint_progress("reach", i, 5, 5); // frozen signature
            }
        }
        let rec = uninstall().expect("recorder");
        uninstall_progress().expect("installed");
        let text = buf.text();
        assert_eq!(
            text.matches("watchdog[test]: fixpoint `reach`").count(),
            1,
            "plateau flagged exactly once: {text}"
        );
        assert!(text.contains("for 3 consecutive iterations"));
        assert!(text.contains("open span `reachability`"));
        let stalls: Vec<_> = rec
            .records()
            .iter()
            .filter(|r| r.name == "watchdog_stall")
            .collect();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].fields[3], ("stale".to_owned(), 3));
    }

    #[test]
    fn watchdog_rearms_when_the_iterate_moves() {
        let (_clock, buf) = channel(Duration::from_secs(3600), 2);
        for i in 0..5 {
            fixpoint_progress("eg", i, 9, 9);
        }
        fixpoint_progress("eg", 5, 10, 9); // signature moved: re-arm
        for i in 6..12 {
            fixpoint_progress("eg", i, 10, 9);
        }
        uninstall_progress().expect("installed");
        assert_eq!(
            buf.text().matches("watchdog[test]: fixpoint `eg`").count(),
            2,
            "each plateau flags once: {}",
            buf.text()
        );
    }

    #[test]
    fn no_channel_means_no_op() {
        assert!(!progress_active());
        fixpoint_progress("reach", 1, 1, 1);
        assert!(uninstall_progress().is_none());
    }
}
