//! Memory timeline sampling and per-phase peak-live attribution.
//!
//! The BDD arena is the estimator's dominant allocation, but the engine
//! crates must not depend on `covest-bdd` from here — so the driver
//! (shard runner, CLI front-end) installs a thread-local **sampler**
//! closure over its manager via [`set_mem_sampler`]. The recorder then
//! stamps a [`MemSample`] into the record stream at every span open,
//! span close, and event (BFS steps are events, so each step carries a
//! sample) — the memory *timeline*.
//!
//! [`peak_by_phase`] folds that timeline into a per-phase peak-live
//! attribution table. The attribution rule makes the table reconcile
//! **exactly** with the manager's `bdd_peak_live_nodes` counter: each
//! sample normally contributes its live-node gauge, but the first
//! sample that observes a new high-water mark contributes the mark
//! itself — the allocation that set it happened inside that sample's
//! phase, between the previous sample and this one. The table's maximum
//! therefore equals the final high-water mark, provided the forest ends
//! with a sampled close (the shard span guarantees this).
//!
//! Samples are deterministic: live nodes, arena capacity, and the
//! high-water mark are pure functions of the operation sequence, so the
//! memory timeline obeys the same byte-parity contract as counters.

use std::cell::RefCell;

use crate::{Counters, RecordKind, SpanRecord};

/// One reading of the driver's arena gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSample {
    /// Live (reachable-or-uncollected) nodes right now.
    pub live_nodes: u64,
    /// Bytes held by the arena, unique tables and operation caches.
    pub arena_bytes: u64,
    /// High-water mark of `live_nodes` since the manager was created.
    pub peak_live_nodes: u64,
}

/// Field names a span-open / event sample records under.
pub const OPEN_FIELDS: [&str; 3] = ["mem_live", "mem_bytes", "mem_peak"];
/// Field names a span-close sample records under.
pub const CLOSE_FIELDS: [&str; 3] = ["mem_live_close", "mem_bytes_close", "mem_peak_close"];

pub(crate) fn open_fields(s: MemSample) -> Vec<(String, u64)> {
    vec![
        (OPEN_FIELDS[0].to_owned(), s.live_nodes),
        (OPEN_FIELDS[1].to_owned(), s.arena_bytes),
        (OPEN_FIELDS[2].to_owned(), s.peak_live_nodes),
    ]
}

pub(crate) fn close_fields(s: MemSample) -> Vec<(String, u64)> {
    vec![
        (CLOSE_FIELDS[0].to_owned(), s.live_nodes),
        (CLOSE_FIELDS[1].to_owned(), s.arena_bytes),
        (CLOSE_FIELDS[2].to_owned(), s.peak_live_nodes),
    ]
}

thread_local! {
    static SAMPLER: RefCell<Option<Box<dyn Fn() -> MemSample>>> = const { RefCell::new(None) };
}

/// Installs `f` as the current thread's memory sampler. The recorder
/// calls it at every span open/close and event while both it and a
/// telemetry recorder are installed.
pub fn set_mem_sampler(f: impl Fn() -> MemSample + 'static) {
    SAMPLER.with(|s| *s.borrow_mut() = Some(Box::new(f)));
}

/// Removes the current thread's memory sampler, if any.
pub fn clear_mem_sampler() {
    SAMPLER.with(|s| *s.borrow_mut() = None);
}

/// One reading from the installed sampler (`None` without one).
pub fn sample() -> Option<MemSample> {
    // Taken out of the slot for the duration of the call so a sampler
    // that itself records telemetry cannot recurse into the borrow.
    let f = SAMPLER.with(|s| s.borrow_mut().take())?;
    let reading = f();
    SAMPLER.with(|s| {
        let mut slot = s.borrow_mut();
        if slot.is_none() {
            *slot = Some(f);
        }
    });
    Some(reading)
}

/// The phase a record's memory samples are attributed to: the innermost
/// enclosing span (including the record itself) named `compile`,
/// `reachability` (→ `reach`), `care_install`, or `signal:NAME`;
/// `other` when no ancestor matches (e.g. the shard root span).
pub fn phase_of(records: &[SpanRecord], index: usize) -> &str {
    let mut cursor = Some(index);
    while let Some(i) = cursor {
        let r = &records[i];
        if r.kind == RecordKind::Span {
            match r.name.as_str() {
                "compile" => return "compile",
                "reachability" => return "reach",
                "care_install" => return "care_install",
                name if name.starts_with("signal:") => return &records[i].name,
                _ => {}
            }
        }
        cursor = r.parent;
    }
    "other"
}

/// Folds a record forest's memory samples into a per-phase peak-live
/// table (phase name → peak live nodes attributed to it), in
/// first-touched phase order. See the module docs for the attribution
/// rule; [`table_peak`] of the result equals the forest's final
/// `mem_peak` reading exactly.
pub fn peak_by_phase(records: &[SpanRecord]) -> Counters {
    // Chronological sample order is the Euler tour of the span forest,
    // reconstructed from parent links alone (records append in open
    // order and spans nest by scope): before record `i` opens, every
    // open span that is not `i`'s parent must already have closed. This
    // is timestamp-free, so it is exact even under a ManualClock where
    // every stamp ties at zero.
    let mut order: Vec<(usize, bool)> = Vec::with_capacity(records.len() * 2);
    let mut stack: Vec<usize> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        while stack.last().copied() != r.parent {
            // A well-formed forest always has the parent on the stack;
            // bail instead of panicking on a malformed one.
            let Some(top) = stack.pop() else { break };
            order.push((top, true));
        }
        order.push((i, false));
        if r.kind == RecordKind::Span {
            stack.push(i);
        }
    }
    while let Some(top) = stack.pop() {
        order.push((top, true));
    }

    let field = |r: &SpanRecord, name: &str| -> Option<u64> {
        r.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    let mut table = Counters::new();
    let mut prev_peak = 0u64;
    for (index, is_close) in order {
        let names = if is_close {
            &CLOSE_FIELDS
        } else {
            &OPEN_FIELDS
        };
        let r = &records[index];
        let (Some(live), Some(peak)) = (field(r, names[0]), field(r, names[2])) else {
            continue;
        };
        let mut value = live;
        if peak > prev_peak {
            value = value.max(peak);
            prev_peak = peak;
        }
        table.set_max(phase_of(records, index), value);
    }
    table
}

/// The maximum value in a [`peak_by_phase`] table (0 when empty) — the
/// figure that must equal `bdd_peak_live_nodes`.
pub fn table_peak(table: &Counters) -> u64 {
    table.iter().map(|(_, v)| v).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, install, span, uninstall, ManualClock, Telemetry};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn fake_sampler() -> Arc<AtomicU64> {
        // live = current value, peak = high-water of the values fed in.
        let live = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let (l, p) = (live.clone(), peak.clone());
        set_mem_sampler(move || {
            let v = l.load(Ordering::Relaxed);
            let hw = p.load(Ordering::Relaxed).max(v);
            p.store(hw, Ordering::Relaxed);
            MemSample {
                live_nodes: v,
                arena_bytes: v * 16,
                peak_live_nodes: hw,
            }
        });
        live
    }

    #[test]
    fn samples_ride_on_spans_and_events() {
        let clock = Arc::new(ManualClock::new());
        install(Telemetry::with_clock(clock.clone()));
        let live = fake_sampler();
        live.store(10, Ordering::Relaxed);
        {
            let _s = span("compile");
            live.store(50, Ordering::Relaxed);
            event("tick", &[("n", 1)]);
            live.store(20, Ordering::Relaxed);
        }
        clear_mem_sampler();
        let rec = uninstall().expect("installed");
        let records = rec.records();
        assert_eq!(records[0].fields[0], ("mem_live".to_owned(), 10));
        assert_eq!(records[0].fields[1], ("mem_bytes".to_owned(), 160));
        let close: Vec<_> = records[0]
            .fields
            .iter()
            .filter(|(n, _)| n.starts_with("mem_") && n.ends_with("_close"))
            .collect();
        assert_eq!(close.len(), 3);
        assert_eq!(*close[0], ("mem_live_close".to_owned(), 20));
        assert_eq!(*close[2], ("mem_peak_close".to_owned(), 50));
        // The event carries the user fields first, then the sample.
        assert_eq!(records[1].fields[0], ("n".to_owned(), 1));
        assert_eq!(records[1].fields[1], ("mem_live".to_owned(), 50));
    }

    #[test]
    fn peak_attribution_reconciles_with_high_water() {
        let clock = Arc::new(ManualClock::new());
        install(Telemetry::with_clock(clock.clone()));
        let live = fake_sampler();
        live.store(2, Ordering::Relaxed);
        {
            let _shard = span("shard:demo");
            {
                let _c = span("compile");
                live.store(100, Ordering::Relaxed);
                clock.advance(Duration::from_micros(1));
            }
            live.store(40, Ordering::Relaxed);
            {
                let _r = span("reachability");
                live.store(70, Ordering::Relaxed);
                event("bfs_step", &[("step", 1)]);
                live.store(60, Ordering::Relaxed);
                clock.advance(Duration::from_micros(1));
            }
            {
                let _s = span("signal:ack");
                live.store(140, Ordering::Relaxed);
                clock.advance(Duration::from_micros(1));
            }
            live.store(30, Ordering::Relaxed);
        }
        clear_mem_sampler();
        let rec = uninstall().expect("installed");
        let table = peak_by_phase(rec.records());
        // compile's close observed the 100 high-water; signal:ack's
        // close observed the 140 one; reach never set a new mark so it
        // keeps its largest live gauge.
        assert_eq!(table.get("compile"), 100);
        assert_eq!(table.get("reach"), 70);
        assert_eq!(table.get("signal:ack"), 140);
        assert_eq!(table.get("other"), 30);
        assert_eq!(table_peak(&table), 140);
    }

    #[test]
    fn sampler_absent_means_no_mem_fields() {
        install(Telemetry::new());
        {
            let _s = span("compile");
        }
        let rec = uninstall().expect("installed");
        assert!(rec.records()[0].fields.is_empty());
        assert!(peak_by_phase(rec.records()).is_empty());
    }
}
