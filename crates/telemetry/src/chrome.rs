//! Chrome trace-event export: the span forest as a Perfetto-loadable
//! timeline, plus the streaming trace writer both formats share.
//!
//! The Chrome trace-event format (the JSON array flavor) is what
//! `ui.perfetto.dev` and `chrome://tracing` ingest: spans become
//! complete events (`ph:"X"`, microsecond `ts`/`dur`), telemetry events
//! become thread-scoped instants (`ph:"i"`), and every **track** — one
//! per pool worker, `tid` = worker index + 1, `tid` 0 for the
//! front-end — is labeled through `thread_name` metadata. Span fields
//! and labels ride in `args`, so a shard span shows its `signals` and
//! `stolen` payload in the Perfetto side panel.
//!
//! Streaming: the pool hands each finished shard's forest to a
//! [`TraceSink`] as the result arrives, so a long batch run never
//! buffers more than one shard's records. [`TraceWriter`] is the file
//! sink behind `--trace`; it also speaks the native JSONL format (one
//! record per line with `id`/`parent` rebased per track and a `tid`
//! field), keeping the two formats behind one `--trace-format` switch.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;
use std::str::FromStr;

use crate::{escape_json, write_record_json, RecordKind, SpanRecord};

/// The on-disk flavor of a `--trace` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Native JSONL: one record object per line (the PR-6 format, plus
    /// a `tid` track field).
    #[default]
    Jsonl,
    /// Chrome trace-event JSON array, for `ui.perfetto.dev`.
    Chrome,
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "chrome" | "perfetto" => Ok(TraceFormat::Chrome),
            other => Err(format!(
                "unknown trace format `{other}` (expected `jsonl` or `chrome`)"
            )),
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Chrome => "chrome",
        })
    }
}

/// Where finished span forests go, one track at a time. The pool calls
/// [`TraceSink::write_track`] from its result loop as each shard
/// completes; implementations buffer any I/O error until
/// [`TraceWriter::finish`] so workers never observe it.
pub trait TraceSink {
    /// Appends `records` as (part of) the track `tid`, labeled `label`.
    /// A tid may receive several batches: a worker writes one batch per
    /// shard it executed, in execution order.
    fn write_track(&mut self, tid: u64, label: &str, records: &[SpanRecord]);
}

/// The streaming trace file writer behind `--trace`.
///
/// Tracks arrive incrementally via [`TraceSink::write_track`] and are
/// flushed to `out` immediately; memory use is bounded by the largest
/// single batch, not the run. [`TraceWriter::finish`] closes the
/// Chrome JSON array and surfaces the first deferred I/O error.
pub struct TraceWriter<W: io::Write> {
    out: W,
    format: TraceFormat,
    /// First write error, reported at [`TraceWriter::finish`].
    error: Option<io::Error>,
    /// JSONL: next record id, so ids stay unique across tracks.
    next_id: usize,
    /// Chrome: whether the opening `[` has been written.
    opened: bool,
    /// Chrome: tids that already carry `thread_name` metadata.
    named: BTreeSet<u64>,
}

impl<W: io::Write> TraceWriter<W> {
    /// A writer emitting `format` onto `out`.
    pub fn new(out: W, format: TraceFormat) -> Self {
        TraceWriter {
            out,
            format,
            error: None,
            next_id: 0,
            opened: false,
            named: BTreeSet::new(),
        }
    }

    fn emit(&mut self, text: &str) {
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(text.as_bytes()) {
                self.error = Some(e);
            }
        }
    }

    /// Closes the trace (the Chrome array needs its `]`) and returns
    /// the first I/O error deferred from the streaming writes.
    pub fn finish(mut self) -> io::Result<()> {
        self.finish_into()
    }

    /// [`TraceWriter::finish`], handing back the underlying sink — for
    /// in-memory exports (`Vec<u8>` sinks) and tests.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.finish_into()?;
        Ok(self.out)
    }

    fn finish_into(&mut self) -> io::Result<()> {
        if self.format == TraceFormat::Chrome {
            let text = if self.opened { "\n]\n" } else { "[]\n" };
            self.emit(text);
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

impl<W: io::Write> TraceSink for TraceWriter<W> {
    fn write_track(&mut self, tid: u64, label: &str, records: &[SpanRecord]) {
        if self.error.is_some() {
            return;
        }
        let mut buf = String::new();
        match self.format {
            TraceFormat::Jsonl => {
                let base = self.next_id;
                for (i, r) in records.iter().enumerate() {
                    write_record_json(&mut buf, r, base + i, r.parent.map(|p| base + p), Some(tid));
                }
                self.next_id += records.len();
            }
            TraceFormat::Chrome => {
                if !self.opened {
                    buf.push('[');
                    self.opened = true;
                    self.emit(&buf);
                    buf.clear();
                }
                let mut first = self.named.is_empty() && self.next_id == 0;
                self.next_id = 1; // any event written ⇒ commas from now on
                if self.named.insert(tid) {
                    if !first {
                        buf.push(',');
                    }
                    first = false;
                    let _ = write!(
                        buf,
                        "\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        escape_json(label)
                    );
                }
                for r in records {
                    if !first {
                        buf.push(',');
                    }
                    first = false;
                    buf.push('\n');
                    write_chrome_event(&mut buf, r, tid);
                }
            }
        }
        self.emit(&buf);
    }
}

fn write_chrome_event(out: &mut String, r: &SpanRecord, tid: u64) {
    let ts = r.start.as_micros();
    match r.kind {
        RecordKind::Span => {
            let dur = r.end.map_or(0, |e| e.saturating_sub(r.start).as_micros());
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\"cat\":\"covest\",\
                 \"ts\":{ts},\"dur\":{dur}",
                escape_json(&r.name)
            );
        }
        RecordKind::Event => {
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\
                 \"cat\":\"covest\",\"ts\":{ts}",
                escape_json(&r.name)
            );
        }
    }
    if !r.fields.is_empty() || !r.labels.is_empty() {
        out.push_str(",\"args\":{");
        let mut first = true;
        for (name, value) in &r.fields {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{value}", escape_json(name));
        }
        for (name, value) in &r.labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(name), escape_json(value));
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders a set of `(tid, label, records)` tracks as one Chrome
/// trace-event JSON document — the in-memory convenience over
/// [`TraceWriter`], for tests and one-shot exports.
pub fn render<'a>(tracks: impl IntoIterator<Item = (u64, &'a str, &'a [SpanRecord])>) -> String {
    let mut writer = TraceWriter::new(Vec::new(), TraceFormat::Chrome);
    for (tid, label, records) in tracks {
        writer.write_track(tid, label, records);
    }
    let out = writer.into_inner().expect("Vec<u8> sink cannot fail");
    String::from_utf8(out).expect("trace output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, span, span_field, span_label, uninstall, ManualClock, Telemetry};
    use std::sync::Arc;
    use std::time::Duration;

    fn forest() -> Vec<SpanRecord> {
        let clock = Arc::new(ManualClock::new());
        install(Telemetry::with_clock(clock.clone()));
        {
            let _shard = span("shard:demo");
            span_label("signals", "ack+req");
            span_field("stolen", 0);
            clock.advance(Duration::from_micros(3));
            {
                let _c = span("compile");
                clock.advance(Duration::from_micros(4));
            }
        }
        uninstall().expect("installed").into_parts().0
    }

    #[test]
    fn render_emits_metadata_and_complete_events() {
        let records = forest();
        let text = render([(1, "worker 0", records.as_slice())]);
        assert!(text.starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"worker 0\"}}"
        ));
        assert!(text.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"shard:demo\",\"cat\":\"covest\",\
             \"ts\":0,\"dur\":7,\"args\":{\"stolen\":0,\"signals\":\"ack+req\"}}"
        ));
        assert!(text.contains("\"name\":\"compile\",\"cat\":\"covest\",\"ts\":3,\"dur\":4"));
    }

    #[test]
    fn empty_trace_is_a_valid_array() {
        let writer = TraceWriter::new(Vec::new(), TraceFormat::Chrome);
        let mut w = writer;
        w.finish_into().expect("vec sink");
        assert_eq!(String::from_utf8(w.out).unwrap(), "[]\n");
    }

    #[test]
    fn jsonl_tracks_rebase_ids_and_tag_tid() {
        let records = forest();
        let mut w = TraceWriter::new(Vec::new(), TraceFormat::Jsonl);
        w.write_track(1, "worker 0", &records);
        w.write_track(2, "worker 1", &records);
        let text = String::from_utf8(w.out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"id\":0") && lines[0].contains("\"tid\":1"));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[2].contains("\"id\":2") && lines[2].contains("\"tid\":2"));
        assert!(lines[3].contains("\"parent\":2"));
    }

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!(
            "chrome".parse::<TraceFormat>().unwrap(),
            TraceFormat::Chrome
        );
        assert_eq!(
            "perfetto".parse::<TraceFormat>().unwrap(),
            TraceFormat::Chrome
        );
        assert!("xml".parse::<TraceFormat>().is_err());
    }
}
