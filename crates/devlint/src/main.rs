//! `covest-devlint` — source-level invariants of this workspace, checked
//! structurally instead of with brittle CI `grep` one-liners.
//!
//! Rules (see DESIGN.md "Observability" and "Core engine layout"):
//!
//! - `raw-roots` — the raw-roots GC contract was removed in the packed
//!   arena rewrite; no source may mention `protected_refs` again.
//! - `cache-clear` — every direct-mapped compute cache declared on the
//!   BDD `Inner` (fields named `*_memo` / `*_cache` in
//!   `crates/bdd/src/manager.rs`) must be cleared inside
//!   `clear_caches()`, and both `manager.rs` and `reorder.rs` must call
//!   `self.clear_caches();` — refs are reassigned by GC/reorder, so a
//!   stale cache entry is a wrong answer, not a slow one.
//! - `hot-path-hashmap` — no `HashMap` in the BDD apply/quantify/
//!   substitute/simplify kernels (`manager.rs`, `quant.rs`, `subst.rs`,
//!   `simplify.rs`); the packed-arena rewrite replaced them with
//!   open-addressing tables and SipHash must stay off the hot paths.
//! - `raw-instant` — `Instant::now()` is confined to `crates/telemetry`
//!   and `crates/bench`; everything else must go through
//!   `covest_telemetry::Stopwatch` so the deterministic-counters /
//!   timings split stays auditable.
//! - `progress-eprintln` — engine crates must not write to stderr
//!   directly: runtime diagnostics go through the progress/watchdog
//!   channel (`covest_telemetry::progress`), which is throttled,
//!   labeled, and clock-injectable. `eprintln!` is allowed only in the
//!   CLI (user-facing errors/usage), binaries (`src/bin/`), tests, and
//!   the progress module itself.
//!
//! A finding on a line ending in `// devlint: allow(<rule>)` is
//! suppressed. Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation.
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// `true` when a source line opts out of `rule`.
fn allowed(line: &str, rule: &str) -> bool {
    line.split("// devlint: allow(")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .is_some_and(|r| r.trim() == rule)
}

/// Collects all `.rs` files under `dir`, sorted for deterministic output.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Flags every line of `src` containing `needle`, minus allowed lines.
fn scan_lines(
    path: &Path,
    src: &str,
    needle: &str,
    rule: &'static str,
    message: &str,
    out: &mut Vec<Finding>,
) {
    for (i, line) in src.lines().enumerate() {
        if line.contains(needle) && !allowed(line, rule) {
            out.push(Finding {
                path: path.to_owned(),
                line: i + 1,
                rule,
                message: message.to_owned(),
            });
        }
    }
}

/// The `cache-clear` structural rule on `crates/bdd/src/manager.rs` and
/// `crates/bdd/src/reorder.rs` contents.
fn check_cache_clear(
    manager_path: &Path,
    manager_src: &str,
    reorder_path: &Path,
    reorder_src: &str,
    out: &mut Vec<Finding>,
) {
    for (path, src) in [(manager_path, manager_src), (reorder_path, reorder_src)] {
        if !src.contains("self.clear_caches();") {
            out.push(Finding {
                path: path.to_owned(),
                line: 0,
                rule: "cache-clear",
                message: "must route GC/reorder through `self.clear_caches();`".to_owned(),
            });
        }
    }

    // The body of `pub fn clear_caches` up to the closing brace at the
    // method's indentation level.
    let body: String = manager_src
        .lines()
        .skip_while(|l| !l.contains("pub fn clear_caches"))
        .take_while(|l| *l != "    }")
        .collect::<Vec<_>>()
        .join("\n");

    for (i, line) in manager_src.lines().enumerate() {
        for field in cache_fields(line) {
            if !body.contains(&format!("self.{field}.clear()")) && !allowed(line, "cache-clear") {
                out.push(Finding {
                    path: manager_path.to_owned(),
                    line: i + 1,
                    rule: "cache-clear",
                    message: format!("compute cache `{field}` is not cleared in clear_caches()"),
                });
            }
        }
    }
}

/// Identifiers on `line` matching `[a-z_]+_(memo|cache)` — the compute
/// caches declared on the BDD `Inner`.
fn cache_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut word = String::new();
    for c in line.chars().chain(['\n']) {
        if c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit() {
            word.push(c);
        } else {
            if word.ends_with("_memo") || word.ends_with("_cache") {
                fields.push(std::mem::take(&mut word));
            }
            word.clear();
        }
    }
    fields
}

/// `true` for the paths where `eprintln!` is sanctioned: the CLI's
/// user-facing errors, standalone binaries, tests, and the progress
/// channel itself.
fn eprintln_exempt(crates: &Path, path: &Path) -> bool {
    path.starts_with(crates.join("cli"))
        || path == crates.join("telemetry").join("src").join("progress.rs")
        || path
            .components()
            .any(|c| c.as_os_str() == "bin" || c.as_os_str() == "tests")
}

fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates = root.join("crates");
    let mut sources = Vec::new();
    rust_sources(&crates, &mut sources)?;

    let hot_paths = ["manager.rs", "quant.rs", "subst.rs", "simplify.rs"]
        .map(|f| crates.join("bdd").join("src").join(f));
    let instant_ok = [crates.join("telemetry"), crates.join("bench")];
    // The linter's own sources spell the forbidden tokens.
    let self_dir = crates.join("devlint");

    let mut findings = Vec::new();
    for path in &sources {
        if path.starts_with(&self_dir) {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        scan_lines(
            path,
            &src,
            "protected_refs",
            "raw-roots",
            "the raw-roots GC contract was removed; do not reintroduce it",
            &mut findings,
        );
        if hot_paths.iter().any(|p| p == path) {
            for needle in ["HashMap<", "HashMap::"] {
                scan_lines(
                    path,
                    &src,
                    needle,
                    "hot-path-hashmap",
                    "no HashMap on the BDD hot paths (use the packed tables)",
                    &mut findings,
                );
            }
        }
        if !instant_ok.iter().any(|p| path.starts_with(p)) {
            scan_lines(
                path,
                &src,
                "Instant::now()",
                "raw-instant",
                "use covest_telemetry::Stopwatch instead of raw Instant",
                &mut findings,
            );
        }
        if !eprintln_exempt(&crates, path) {
            scan_lines(
                path,
                &src,
                "eprintln!",
                "progress-eprintln",
                "engine crates report through covest_telemetry::progress, not stderr",
                &mut findings,
            );
        }
    }

    let manager = crates.join("bdd").join("src").join("manager.rs");
    let reorder = crates.join("bdd").join("src").join("reorder.rs");
    check_cache_clear(
        &manager,
        &std::fs::read_to_string(&manager)?,
        &reorder,
        &std::fs::read_to_string(&reorder)?,
        &mut findings,
    );

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => PathBuf::from("."),
        [r] => PathBuf::from(r),
        _ => {
            eprintln!("usage: covest-devlint [workspace-root]");
            return ExitCode::from(2);
        }
    };
    match run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("devlint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("devlint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("devlint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_fields_extracts_identifiers() {
        assert_eq!(
            cache_fields("    ite_cache: DirectCache, and_memo: X, other: Y,"),
            vec!["ite_cache".to_owned(), "and_memo".to_owned()]
        );
        assert!(cache_fields("let x = 1;").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_matching_rule_only() {
        let line = "let t = Instant::now(); // devlint: allow(raw-instant)";
        assert!(allowed(line, "raw-instant"));
        assert!(!allowed(line, "raw-roots"));
        assert!(!allowed("let t = Instant::now();", "raw-instant"));
    }

    #[test]
    fn cache_clear_rule_flags_missing_clear() {
        let manager = "struct Inner { foo_cache: C, bar_memo: M }\n\
                       impl Inner {\n    pub fn clear_caches(&mut self) {\n        self.foo_cache.clear();\n    }\n\
                       \n    fn gc(&mut self) { self.clear_caches(); }\n}\n";
        let reorder = "fn reduce() { /* no call */ }\n";
        let mut findings = Vec::new();
        check_cache_clear(
            Path::new("manager.rs"),
            manager,
            Path::new("reorder.rs"),
            reorder,
            &mut findings,
        );
        let rules: Vec<_> = findings.iter().map(|f| f.message.clone()).collect();
        assert!(rules.iter().any(|m| m.contains("bar_memo")));
        assert!(rules.iter().any(|m| m.contains("clear_caches")));
        assert!(!rules.iter().any(|m| m.contains("foo_cache")));
    }

    #[test]
    fn eprintln_exemptions_cover_the_sanctioned_sites_only() {
        let crates = Path::new("crates");
        assert!(eprintln_exempt(crates, &crates.join("cli/src/main.rs")));
        assert!(eprintln_exempt(
            crates,
            &crates.join("telemetry/src/progress.rs")
        ));
        assert!(eprintln_exempt(
            crates,
            &crates.join("circuits/src/bin/gen_models.rs")
        ));
        assert!(eprintln_exempt(crates, &crates.join("par/tests/parity.rs")));
        assert!(!eprintln_exempt(crates, &crates.join("par/src/shard.rs")));
        assert!(!eprintln_exempt(
            crates,
            &crates.join("telemetry/src/lib.rs")
        ));
    }

    #[test]
    fn workspace_is_clean() {
        // The real tree must satisfy every rule (this is the CI gate,
        // executed as a unit test too so `cargo test` catches drift).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = run(&root).expect("scan");
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
