//! Integration reproduction of the paper's Figures 1–3 through the
//! umbrella crate's public API.

use covest::bdd::BddManager;
use covest::circuits::toys;
use covest::coverage::{
    reference_covered_set, CoverageEstimator, CoverageOptions, CoveredSets, ReferenceMode,
    DEFAULT_STATE_LIMIT,
};
use covest::ctl::parse_formula;

#[test]
fn figure1_exactly_the_demanded_states_are_covered() {
    let bdd = BddManager::new();
    let stg = toys::figure1();
    let fsm = stg.compile(&bdd).expect("compiles");
    let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
    let prop = parse_formula("AG (p1 -> AX AX q)").expect("subset");
    assert!(cs.verify(&prop).expect("verifies"));
    let covered = cs.covered_from_init(&prop).expect("covered");
    let mut expect = bdd.constant(false);
    for &s in toys::FIGURE1_COVERED {
        expect = expect.or(&stg.state_fn(&fsm, s));
    }
    assert_eq!(covered, expect);
}

#[test]
fn figure2_raw_zero_transformed_first_q() {
    let bdd = BddManager::new();
    let stg = toys::figure2();
    let fsm = stg.compile(&bdd).expect("compiles");
    let prop = parse_formula("A[p1 U q]").expect("subset");

    // Raw Definition 3: zero coverage, as Section 2.1 observes.
    let raw = reference_covered_set(
        &fsm,
        "q",
        &prop,
        ReferenceMode::Raw,
        &[],
        DEFAULT_STATE_LIMIT,
    )
    .expect("runs");
    assert!(raw.is_false(), "raw coverage of A[p1 U q] is zero");

    // The symbolic algorithm (≡ transformed Definition 3): first q-state.
    let mut cs = CoveredSets::new(&fsm, "q").expect("q exists");
    let covered = cs.covered_from_init(&prop).expect("covered");
    let mut expect = bdd.constant(false);
    for &s in toys::FIGURE2_COVERED {
        expect = expect.or(&stg.state_fn(&fsm, s));
    }
    assert_eq!(covered, expect);
}

#[test]
fn figure3_traverse_and_firstreached_labelling() {
    let bdd = BddManager::new();
    let stg = toys::figure3();
    let fsm = stg.compile(&bdd).expect("compiles");
    let mut cs = CoveredSets::new(&fsm, "f2").expect("f2 exists");
    let f1 = parse_formula("f1").expect("subset");
    let f2 = parse_formula("f2").expect("subset");

    let trav = cs.traverse(fsm.init(), &f1, &f2).expect("traverse");
    let mut expect = bdd.constant(false);
    for &s in toys::FIGURE3_TRAVERSE {
        expect = expect.or(&stg.state_fn(&fsm, s));
    }
    assert_eq!(trav, expect, "traverse marks the f1-prefix");

    let first = cs.firstreached(fsm.init(), &f2).expect("firstreached");
    let mut expect = bdd.constant(false);
    for &s in toys::FIGURE3_FIRSTREACHED {
        expect = expect.or(&stg.state_fn(&fsm, s));
    }
    assert_eq!(first, expect, "firstreached marks the first f2 states");
}

#[test]
fn figure2_percentages_through_the_estimator() {
    let bdd = BddManager::new();
    let stg = toys::figure2();
    let fsm = stg.compile(&bdd).expect("compiles");
    let est = CoverageEstimator::new(&fsm);
    let prop = parse_formula("A[p1 U q]").expect("subset");
    let analysis = est
        .analyze("q", &[prop], &CoverageOptions::default())
        .expect("analyzes");
    // 1 covered state of 6 reachable.
    assert_eq!(analysis.space_count, 6.0);
    assert_eq!(analysis.covered_count, 1.0);
}
