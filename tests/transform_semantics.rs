//! Semantic properties of the observability transformation (Definition 5)
//! checked against the model checker on random machines:
//!
//! - with `q'` interpreted as `q` (its default), `φ(f)` is equivalent to
//!   `f` "with respect to validity of the verification" (the paper's
//!   claim after Definition 5);
//! - the transformation is idempotent on formulas not mentioning `q`.

use covest::bdd::BddManager;
use covest::ctl::{observability_transform, parse_formula, Formula};
use covest::fsm::Stg;
use covest::mc::ModelChecker;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_stg(rng: &mut StdRng) -> Stg {
    let n = rng.gen_range(3..=6);
    let mut stg = Stg::new("random");
    stg.add_states(n);
    for i in 0..n - 1 {
        stg.add_edge(i, i + 1);
    }
    for _ in 0..rng.gen_range(1..=n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        stg.add_edge(a, b);
    }
    stg.add_edge(n - 1, rng.gen_range(0..n));
    stg.mark_initial(0);
    for s in 0..n {
        if rng.gen_bool(0.5) {
            stg.label(s, "p");
        }
        if rng.gen_bool(0.5) {
            stg.label(s, "q");
        }
    }
    stg.label(rng.gen_range(0..n), "p");
    stg.label(rng.gen_range(0..n), "q");
    stg
}

fn random_formula(rng: &mut StdRng) -> Formula {
    let atoms = ["p", "q", "!p", "!q", "(p & q)", "(p | q)", "TRUE"];
    let mut a = || atoms[rng.gen_range(0..atoms.len())];
    let templates: Vec<String> = vec![
        format!("AG ({} -> AX {})", a(), a()),
        format!("A[{} U {}]", a(), a()),
        format!("AF {}", a()),
        format!("AG {}", a()),
        format!("AX {}", a()),
        format!("AG ({} -> A[{} U {}])", a(), a(), a()),
        format!("(AG {} & AF {})", a(), a()),
    ];
    parse_formula(&templates[rng.gen_range(0..templates.len())]).expect("in subset")
}

#[test]
fn transformed_formula_is_validity_equivalent() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut checked = 0;
    for _ in 0..200 {
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        let transformed = observability_transform(&formula, "q");
        let mut mc = ModelChecker::new(&fsm);
        // With q' defaulting to q, both must agree on validity.
        let original = mc.holds(&formula.clone().into()).expect("checks");
        let via_transform = mc.holds(&transformed).expect("checks");
        assert_eq!(
            original, via_transform,
            "validity must be preserved: {formula}"
        );
        checked += 1;
    }
    assert_eq!(checked, 200);
}

#[test]
fn transform_without_observed_signal_preserves_sat_sets() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..100 {
        let bdd = BddManager::new();
        let stg = random_stg(&mut rng);
        let fsm = stg.compile(&bdd).expect("compiles");
        let formula = random_formula(&mut rng);
        if formula.mentions("zz") {
            continue;
        }
        let transformed = observability_transform(&formula, "zz");
        let mut mc = ModelChecker::new(&fsm);
        let s1 = mc.sat(&formula.clone().into()).expect("sat");
        let s2 = mc.sat(&transformed).expect("sat");
        assert_eq!(s1, s2, "no-op transform keeps the sat set: {formula}");
    }
}
