//! Integration tests for the paper's Section 5 narratives, exercised
//! through the umbrella crate: the bug discovery in the priority buffer
//! and the staged hole closing in the queue and the pipeline.

use covest::bdd::BddManager;
use covest::circuits::{circular_queue, pipeline, priority_buffer};
use covest::coverage::{CoverageEstimator, CoverageOptions};
use covest::mc::{ModelChecker, Verdict};

#[test]
fn bug_discovery_end_to_end() {
    // Verify suites on the buggy design; everything passes.
    let bdd = BddManager::new();
    let buggy = priority_buffer::build(&bdd, 4, true).expect("compiles");
    let mut mc = ModelChecker::new(&buggy.fsm);
    for p in priority_buffer::hi_suite(4)
        .into_iter()
        .chain(priority_buffer::lo_suite_initial(4))
    {
        assert!(mc.holds(&p.into()).expect("checks"));
    }
    // The coverage hole points at the missing case; the new property
    // fails with a counterexample trace.
    let missing = priority_buffer::lo_missing_case();
    let verdict = mc.check(&missing.into()).expect("checks");
    match verdict {
        Verdict::Fails { counterexample, .. } => {
            let trace = counterexample.expect("AG failure produces a trace");
            // The trace ends in a state where low entries were dropped.
            assert!(!trace.steps.is_empty());
        }
        Verdict::Holds => panic!("the buggy design must fail the missing case"),
    }
}

#[test]
fn queue_holes_shrink_monotonically() {
    let bdd = BddManager::new();
    let model = circular_queue::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let opts = CoverageOptions::default();
    let mut suite = circular_queue::wrap_suite_initial();
    let mut last = est
        .analyze("wrap", &suite, &opts)
        .expect("analyzes")
        .percent();
    for extra in [
        circular_queue::wrap_suite_additional(),
        circular_queue::wrap_suite_final(),
    ] {
        suite.extend(extra);
        let now = est
            .analyze("wrap", &suite, &opts)
            .expect("analyzes")
            .percent();
        assert!(now >= last, "coverage is monotone in the property set");
        last = now;
    }
    assert_eq!(last, 100.0);
}

#[test]
fn queue_uncovered_traces_show_stall_wraparound() {
    let bdd = BddManager::new();
    let model = circular_queue::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let mut suite = circular_queue::wrap_suite_initial();
    suite.extend(circular_queue::wrap_suite_additional());
    let analysis = est
        .analyze("wrap", &suite, &CoverageOptions::default())
        .expect("analyzes");
    let traces = est.traces_to_uncovered(&analysis, 3);
    assert!(!traces.is_empty());
    for trace in &traces {
        // The step before the uncovered state must assert stall while
        // writing at the last slot — the paper's corner case.
        let penultimate = &trace.steps[trace.steps.len() - 2];
        let stall = penultimate
            .state
            .iter()
            .find(|(n, _)| n == "stall")
            .map(|(_, v)| *v)
            .expect("stall bit");
        assert!(stall, "the hole is reached through a stalled cycle");
    }
}

#[test]
fn pipeline_dont_cares_can_exclude_hold_states() {
    // Section 4.2: declaring the hold phase as don't-care removes the
    // hole from the coverage space entirely.
    let bdd = BddManager::new();
    let model = pipeline::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let opts = CoverageOptions {
        fairness: vec![pipeline::fairness()],
        dont_cares: Some(covest::ctl::PropExpr::atom("processing")),
        ..Default::default()
    };
    let a = est
        .analyze("out", &pipeline::out_suite_initial(4), &opts)
        .expect("analyzes");
    let full_opts = CoverageOptions {
        fairness: vec![pipeline::fairness()],
        ..Default::default()
    };
    let without = est
        .analyze("out", &pipeline::out_suite_initial(4), &full_opts)
        .expect("analyzes");
    // The don't-care region is excluded from the coverage space …
    assert!(a.space_count < without.space_count);
    // … and a 100%-covered suite stays at 100% on the reduced space.
    let mut suite = pipeline::out_suite_initial(4);
    suite.extend(pipeline::out_suite_hold());
    let full = est.analyze("out", &suite, &opts).expect("analyzes");
    assert_eq!(full.percent(), 100.0);
}

#[test]
fn fairness_constrains_the_coverage_space() {
    // Section 4.3: with fairness, coverage is computed over states
    // reachable along fair paths. On the pipeline every reachable state
    // lies on some fair path, so the space is unchanged — but the sat
    // sets of the eventuality properties do change, which shows up as
    // properties failing without fairness.
    let bdd = BddManager::new();
    let model = pipeline::build(&bdd, 4).expect("compiles");
    let est = CoverageEstimator::new(&model.fsm);
    let with = est
        .analyze(
            "out",
            &pipeline::out_suite_initial(4),
            &CoverageOptions {
                fairness: vec![pipeline::fairness()],
                ..Default::default()
            },
        )
        .expect("analyzes");
    assert!(with.all_hold());
    let without = est
        .analyze(
            "out",
            &pipeline::out_suite_initial(4),
            &CoverageOptions::default(),
        )
        .expect("analyzes");
    assert!(!without.all_hold(), "eventualities need fairness");
}
