//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API subset its tests use: [`rngs::StdRng`], [`SeedableRng`],
//! and [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`]. The generator
//! is splitmix64 — deterministic, seedable, and statistically fine for
//! randomized differential tests (it is not the real `StdRng` stream, so
//! seeds select different cases than upstream rand would).

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly to produce a `T` (the element
/// type is inferred from the call site, as in real rand).
pub trait SampleRange<T> {
    /// Samples uniformly from the range using `draw` (a uniform u64 source).
    fn sample(self, draw: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (draw() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample(self, draw: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (draw() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Produces a value from a uniform u64 source.
    fn from_draw(draw: u64) -> Self;
}

impl Standard for bool {
    fn from_draw(draw: u64) -> bool {
        draw & 1 == 1
    }
}

impl Standard for u64 {
    fn from_draw(draw: u64) -> u64 {
        draw
    }
}

/// Random value generation methods, implemented for every RNG.
pub trait Rng {
    /// The next raw 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits -> [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_draw(self.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public domain, Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(2..8);
            assert!((2..8).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let x = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&heads),
            "suspiciously biased: {heads}"
        );
    }
}
