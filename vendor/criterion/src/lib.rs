//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Statistics are deliberately simple — each
//! benchmark is warmed up, then timed over `sample_size` samples and the
//! mean/min are printed — but the harness shape (and thus the bench code)
//! is identical to real criterion, so swapping the real crate back in is a
//! one-line Cargo change.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Soft per-benchmark time budget; iteration counts adapt to it.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the soft time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl ToString, f: F) {
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        run_benchmark(&name.to_string(), sample_size, budget, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, f: F) {
        let label = format!("{}/{}", self.name, id.to_string());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.measurement_time, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, samples, self.criterion.measurement_time, |b| {
            f(b, input)
        });
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "{}/{}", name, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibration: find an iteration count so one sample is neither
    // sub-microsecond noise nor longer than the whole budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = budget / samples.max(1) as u32;
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean: Duration = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "bench {label:<48} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}  ({samples} samples x {iters} iters)"
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
