//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the API subset its property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`
//!   and `boxed`;
//! - strategy sources: integer ranges, [`strategy::Just`], `any::<bool>()`,
//!   tuples, and `&str` regex-lite patterns (character classes with `{m,n}`
//!   repetition);
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! seed and case index instead. Generation is deterministic per test
//! (seeded from the test's module path and name), so failures reproduce.

pub mod test_runner {
    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }

    /// FNV-1a hash of a string, used to derive per-test seeds.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: at each of `depth` nesting levels,
        /// either stop at this (leaf) strategy or recurse via `expand`.
        /// `_size` and `_branch` are accepted for proptest API parity.
        fn prop_recursive<F, R>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            R: Strategy<Value = Self::Value> + 'static,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let recursive = expand(current).boxed();
                current = Union::new(vec![leaf.clone(), recursive]).boxed();
            }
            current
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options` (must be nonempty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// `&str` patterns act as regex-lite string strategies: a sequence of
    /// literal characters and `[...]` classes (with `a-z` ranges), each
    /// optionally followed by `{n}` or `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern `{pattern}`");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {n} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repetition bound"),
                        n.trim().parse::<usize>().expect("repetition bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition bound");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(class.len() as u64) as usize;
                out.push(class[pick]);
            }
        }
        out
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy behind `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T` (proptest's `any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s: length drawn from `len`, elements from the
    /// inner strategy. Mirrors `proptest::collection::vec` for the
    /// supported subset.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategy arms (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right,
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            const CASES: u64 = 96;
            let seed = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..CASES {
                let mut proptest_rng = $crate::test_runner::TestRng::from_seed(
                    seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );
                )+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property failed on case {case} (seed {seed:#x}): {message}");
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad sample {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0..10usize, y in -8i64..8) {
            prop_assert!(x < 10);
            prop_assert!((-8..8).contains(&y));
        }

        #[test]
        fn assume_skips(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(depth_probe in arb_nested()) {
            prop_assert!(depth_probe.depth() <= 5);
            // Exercise the generated leaf payload as well.
            let leaf = depth_probe.innermost();
            prop_assert!(depth_probe.depth() > 0 || matches!(depth_probe, Nested::Leaf(v) if v == leaf));
        }
    }

    #[derive(Debug, Clone)]
    enum Nested {
        Leaf(bool),
        Node(Box<Nested>),
    }

    impl Nested {
        fn depth(&self) -> usize {
            match self {
                Nested::Leaf(_) => 0,
                Nested::Node(inner) => 1 + inner.depth(),
            }
        }

        fn innermost(&self) -> bool {
            match self {
                Nested::Leaf(value) => *value,
                Nested::Node(inner) => inner.innermost(),
            }
        }
    }

    fn arb_nested() -> BoxedStrategy<Nested> {
        any::<bool>()
            .prop_map(Nested::Leaf)
            .prop_recursive(5, 16, 1, |inner| {
                inner.prop_map(|n| Nested::Node(Box::new(n)))
            })
    }
}
