//! # covest
//!
//! Umbrella crate for the `covest` workspace: a reproduction of
//! *"Coverage Estimation for Symbolic Model Checking"* (Y. Hoskote,
//! T. Kam, P.-H. Ho, X. Zhao — DAC 1999).
//!
//! Re-exports every workspace crate under a stable module name:
//!
//! - [`bdd`] — ROBDD engine (substrate)
//! - [`ctl`] — CTL/ACTL formulas, parser, observability transformation
//! - [`fsm`] — symbolic Mealy machines, reachability, traces
//! - [`smv`] — SMV-like modeling language compiled to symbolic FSMs
//! - [`analyze`] — static deck analysis: dependency graphs, lint, COI
//! - [`mc`] — symbolic CTL model checker with fairness
//! - [`coverage`] — the paper's coverage estimator (the contribution)
//! - [`par`] — parallel coverage engine (signal-sharded worker pool)
//! - [`circuits`] — the paper's example circuits and property suites
//! - [`telemetry`] — engine counters, phase spans and per-task profiles
//!
//! See the workspace `README.md` for a guided tour and `DESIGN.md` for the
//! experiment-by-experiment reproduction index.

pub use covest_analyze as analyze;
pub use covest_bdd as bdd;
pub use covest_circuits as circuits;
pub use covest_core as coverage;
pub use covest_ctl as ctl;
pub use covest_fsm as fsm;
pub use covest_mc as mc;
pub use covest_par as par;
pub use covest_smv as smv;
pub use covest_telemetry as telemetry;
