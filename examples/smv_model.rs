//! Using the modeling language end to end: a deck with embedded SPEC,
//! FAIRNESS and OBSERVED sections, checked and covered in a few lines.
//!
//! Run with `cargo run --example smv_model`.

use covest::bdd::BddManager;
use covest::coverage::{CoverageEstimator, CoverageOptions};
use covest::mc::ModelChecker;
use covest::smv::compile;

const DECK: &str = r#"
MODULE main
-- A tiny bus arbiter: two requesters, round-robin tie break.
VAR
  grant : {none, g0, g1};
  turn  : boolean;          -- whose turn on simultaneous request
IVAR
  req0 : boolean;
  req1 : boolean;
ASSIGN
  init(grant) := none;
  init(turn) := FALSE;
  next(grant) := case
    req0 & req1 & !turn : g0;
    req0 & req1 &  turn : g1;
    req0 : g0;
    req1 : g1;
    TRUE : none;
  esac;
  next(turn) := case
    req0 & req1 & !turn : TRUE;   -- g0 served, g1 next
    req0 & req1 &  turn : FALSE;
    TRUE : turn;
  esac;
DEFINE
  granted := grant = g0 | grant = g1;
SPEC AG (req0 & !req1 -> AX grant = g0);
SPEC AG (req1 & !req0 -> AX grant = g1);
SPEC AG (!req0 & !req1 -> AX grant = none);
SPEC AG (req0 & req1 -> AX granted);
FAIRNESS !req0 | !req1;
OBSERVED grant;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bdd = BddManager::new();
    let model = compile(&bdd, DECK)?;

    // Check every embedded SPEC.
    let mut mc = ModelChecker::new(&model.fsm);
    for fair in &model.fairness {
        mc.add_fairness(fair)?;
    }
    for spec in &model.specs {
        let verdict = mc.check(&spec.clone().into())?;
        println!("SPEC {spec}\n  → {verdict}");
    }

    // Coverage for the deck's OBSERVED signals, using the deck's own
    // SPECs and FAIRNESS constraints.
    let estimator = CoverageEstimator::new(&model.fsm);
    let options = CoverageOptions {
        fairness: model.fairness.clone(),
        ..Default::default()
    };
    for observed in &model.observed {
        let analysis = estimator.analyze(observed, &model.specs, &options)?;
        println!(
            "\ncoverage of `{observed}`: {:.2}% ({} / {} states)",
            analysis.percent(),
            analysis.covered_count,
            analysis.space_count
        );
        for state in estimator.uncovered_states(&analysis, 3) {
            let rendered: Vec<String> = state
                .iter()
                .map(|(name, v)| format!("{name}={}", u8::from(*v)))
                .collect();
            println!("  hole: {}", rendered.join(" "));
        }
    }
    Ok(())
}
