//! Circuit 2 walkthrough: closing the wrap-bit coverage hole in stages.
//!
//! Reproduces the paper's narrative: `full`/`empty` reach 100% with two
//! properties each, `wrap` starts around 60%, three more properties help
//! but do not finish the job, and tracing the remaining uncovered states
//! reveals the stall-masked wraparound corner case.
//!
//! Run with `cargo run --example circular_queue`.

use covest::bdd::BddManager;
use covest::circuits::circular_queue;
use covest::coverage::{CoverageEstimator, CoverageOptions};

const DEPTH: i64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bdd = BddManager::new();
    let model = circular_queue::build(&bdd, DEPTH)?;
    let estimator = CoverageEstimator::new(&model.fsm);
    let options = CoverageOptions::default();

    // full / empty: complete with two properties each.
    for (signal, suite) in [
        ("full", circular_queue::full_suite()),
        ("empty", circular_queue::empty_suite()),
    ] {
        let a = estimator.analyze(signal, &suite, &options)?;
        println!(
            "{signal}: {} properties → {:.2}% coverage",
            a.properties.len(),
            a.percent()
        );
    }

    // wrap: staged hole closing.
    let mut suite = circular_queue::wrap_suite_initial();
    let a = estimator.analyze("wrap", &suite, &options)?;
    println!(
        "\nwrap, initial suite: {} properties → {:.2}%",
        suite.len(),
        a.percent()
    );

    suite.extend(circular_queue::wrap_suite_additional());
    let a = estimator.analyze("wrap", &suite, &options)?;
    println!(
        "wrap, +3 properties: {} properties → {:.2}% (still not 100%)",
        suite.len(),
        a.percent()
    );

    // Trace the remaining holes — the paper's methodology step.
    println!("\ntraces to the remaining uncovered states:");
    for trace in estimator.traces_to_uncovered(&a, 2) {
        println!("{trace}");
    }
    println!("  → every hole has `stall` asserted while wp wraps around.\n");

    suite.extend(circular_queue::wrap_suite_final());
    let a = estimator.analyze("wrap", &suite, &options)?;
    println!(
        "wrap, +stall-wraparound property: {} properties → {:.2}%",
        suite.len(),
        a.percent()
    );
    Ok(())
}
