//! Circuit 1 walkthrough: the priority buffer and the escaped bug.
//!
//! Reproduces the paper's Section 5 narrative: a seemingly complete
//! property suite, a coverage hole found by the estimator, and a real
//! design bug caught by the property written to close the hole.
//!
//! Run with `cargo run --example priority_buffer`.

use covest::bdd::BddManager;
use covest::circuits::priority_buffer;
use covest::coverage::{CoverageEstimator, CoverageOptions};

const CAPACITY: i64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Step 1: verify the original suites on the real (buggy) RTL.
    let bdd = BddManager::new();
    let buggy = priority_buffer::build(&bdd, CAPACITY, true)?;
    let estimator = CoverageEstimator::new(&buggy.fsm);
    let options = CoverageOptions::default();

    let hi = estimator.analyze("hi_cnt", &priority_buffer::hi_suite(CAPACITY), &options)?;
    println!(
        "hi_cnt: {} properties, all hold: {}, coverage {:.2}%",
        hi.properties.len(),
        hi.all_hold(),
        hi.percent()
    );

    let lo = estimator.analyze(
        "lo_cnt",
        &priority_buffer::lo_suite_initial(CAPACITY),
        &options,
    )?;
    println!(
        "lo_cnt: {} properties, all hold: {}, coverage {:.2}%",
        lo.properties.len(),
        lo.all_hold(),
        lo.percent()
    );
    println!("  → the bug ESCAPED verification: every property passed.\n");

    // ---- Step 2: inspect the coverage hole.
    println!("uncovered lo_cnt states (the estimator's hint):");
    for state in estimator.uncovered_states(&lo, 4) {
        let rendered: Vec<String> = state
            .iter()
            .map(|(name, v)| format!("{name}={}", u8::from(*v)))
            .collect();
        println!("  {}", rendered.join(" "));
    }
    println!("  → the holes are empty-buffer states receiving low entries.\n");

    // ---- Step 3: write the missing property; it FAILS on the design.
    let missing = priority_buffer::lo_missing_case();
    let catching = estimator.analyze("lo_cnt", std::slice::from_ref(&missing), &options)?;
    println!(
        "missing-case property `{}…`: holds = {}",
        &missing.to_string()[..60.min(missing.to_string().len())],
        catching.all_hold()
    );
    println!("  → BUG FOUND: low-priority entries into an empty buffer are dropped.\n");

    // ---- Step 4: fix the design; everything passes at 100% coverage.
    let bdd2 = BddManager::new();
    let fixed = priority_buffer::build(&bdd2, CAPACITY, false)?;
    let estimator2 = CoverageEstimator::new(&fixed.fsm);
    let mut suite = priority_buffer::lo_suite_initial(CAPACITY);
    suite.push(priority_buffer::lo_missing_case());
    let final_analysis = estimator2.analyze("lo_cnt", &suite, &options)?;
    println!(
        "fixed design: all hold = {}, lo_cnt coverage {:.2}%",
        final_analysis.all_hold(),
        final_analysis.percent()
    );
    Ok(())
}
