//! Quickstart: verify a property and estimate its coverage.
//!
//! Reproduces the paper's introductory example — a modulo-5 counter with
//! `stall` and `reset` inputs, and the property
//! `AG (!stall & !reset & count = C & count < 5 -> AX count = C+1)`.
//!
//! Run with `cargo run --example quickstart`.

use covest::bdd::BddManager;
use covest::coverage::{CoverageEstimator, CoverageOptions};
use covest::ctl::parse_formula;
use covest::smv::compile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the circuit in the SMV-dialect modeling language.
    let deck = r#"
    MODULE main
    VAR count : 0..5;
    IVAR stall : boolean;
         reset : boolean;
    ASSIGN
      init(count) := 0;
      next(count) := case
        reset : 0;
        stall : count;
        count < 5 : count + 1;
        TRUE : 0;
      esac;
    "#;
    let bdd = BddManager::new();
    let model = compile(&bdd, deck)?;

    // 2. Write the properties of the paper's introduction.
    let mut properties = Vec::new();
    for c in 0..5 {
        properties.push(parse_formula(&format!(
            "AG (!stall & !reset & count = {c} & count < 5 -> AX count = {})",
            c + 1
        ))?);
    }

    // 3. Verify and estimate coverage of `count` in one call.
    let estimator = CoverageEstimator::new(&model.fsm);
    let analysis = estimator.analyze("count", &properties, &CoverageOptions::default())?;

    println!("properties verified: {}", analysis.all_hold());
    println!(
        "coverage of `count`: {:.2}% ({} of {} reachable states)",
        analysis.percent(),
        analysis.covered_count,
        analysis.space_count
    );

    // 4. Inspect the holes: which reachable states are never checked?
    println!("\nuncovered states (count, stall, reset bits):");
    for state in estimator.uncovered_states(&analysis, 5) {
        let rendered: Vec<String> = state
            .iter()
            .map(|(name, v)| format!("{name}={}", u8::from(*v)))
            .collect();
        println!("  {}", rendered.join(" "));
    }

    // 5. And get a concrete input sequence leading to one of them.
    if let Some(trace) = estimator
        .traces_to_uncovered(&analysis, 1)
        .into_iter()
        .next()
    {
        println!("\nshortest trace to an uncovered state:\n{trace}");
    }

    Ok(())
}
