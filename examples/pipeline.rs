//! Circuit 3 walkthrough: eventuality properties under fairness, and the
//! 3-cycle output-hold hole.
//!
//! Reproduces the paper's decode-pipeline experiment: nested-Until
//! staging properties that need a `!stall` fairness constraint, initial
//! coverage around three quarters, and the discovery that the output's
//! 3-cycle retention (while a post-processing state machine runs) was
//! never checked.
//!
//! Run with `cargo run --example pipeline`.

use covest::bdd::BddManager;
use covest::circuits::pipeline;
use covest::coverage::{CoverageEstimator, CoverageOptions};

const STAGES: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bdd = BddManager::new();
    let model = pipeline::build(&bdd, STAGES)?;
    let estimator = CoverageEstimator::new(&model.fsm);
    // Fairness: stalls cannot be asserted forever (Section 4.3).
    let options = CoverageOptions {
        fairness: vec![pipeline::fairness()],
        ..Default::default()
    };

    let initial = estimator.analyze("out", &pipeline::out_suite_initial(STAGES), &options)?;
    println!(
        "out, initial suite: {} properties (incl. nested Until), all hold: {}",
        initial.properties.len(),
        initial.all_hold()
    );
    println!("coverage: {:.2}%\n", initial.percent());

    println!("sample uncovered states:");
    for state in estimator.uncovered_states(&initial, 4) {
        let rendered: Vec<String> = state
            .iter()
            .map(|(name, v)| format!("{name}={}", u8::from(*v)))
            .collect();
        println!("  {}", rendered.join(" "));
    }
    println!("  → the holes sit in hold/stall cycles: output retention was never checked.\n");

    let mut suite = pipeline::out_suite_initial(STAGES);
    suite.extend(pipeline::out_suite_hold());
    let full = estimator.analyze("out", &suite, &options)?;
    println!(
        "out, +retention properties: {} properties → {:.2}%",
        full.properties.len(),
        full.percent()
    );

    // Show that fairness is load-bearing: without it the eventuality
    // properties fail on the always-stalled path.
    let unfair = estimator.analyze(
        "out",
        &pipeline::out_suite_initial(STAGES),
        &CoverageOptions::default(),
    )?;
    println!(
        "\nwithout FAIRNESS !stall the suite holds: {} (eventualities fail)",
        unfair.all_hold()
    );
    Ok(())
}
